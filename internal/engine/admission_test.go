package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Every strategy must pass through a configured gate: a saturated gate
// with no queue sheds the query with ErrRejected, and the engine counts
// the shed.
func TestAdmissionShedsEveryStrategy(t *testing.T) {
	e, g := mustEngine(t)
	e.Metrics = metrics.NewRegistry()
	gate := admission.New(admission.Config{MaxConcurrency: 1, QueueDepth: 0})
	e.Admission = gate
	q := mustQuery(t, g, `q(x3) :- x1 ex:hasAuthor x2, x2 ex:hasName x3, x1 x4 "1949"`)

	blocker, err := gate.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sheds := 0
	for _, s := range []Strategy{Sat, RefUCQ, RefSCQ, RefGCov, Dat} {
		_, err := e.AnswerContext(context.Background(), q, s)
		if !errors.Is(err, admission.ErrRejected) {
			t.Fatalf("%s: err = %v, want ErrRejected", s, err)
		}
		sheds++
	}
	blocker.Release()

	snap := e.Metrics.Snapshot()
	if got := snap.Counters["engine.shed"]; got != int64(sheds) {
		t.Fatalf("engine.shed = %d, want %d", got, sheds)
	}
	// Once the blocker releases, the same queries pass.
	for _, s := range []Strategy{Sat, RefUCQ, RefSCQ, RefGCov, Dat} {
		ans, err := e.AnswerContext(context.Background(), q, s)
		if err != nil {
			t.Fatalf("%s after release: %v", s, err)
		}
		if ans.Rows.Len() != 1 {
			t.Fatalf("%s: %d rows, want 1", s, ans.Rows.Len())
		}
		if ans.AdmissionWeight < 1 {
			t.Fatalf("%s: AdmissionWeight = %d, want >= 1", s, ans.AdmissionWeight)
		}
	}
}

// An admitted answer carries its queue wait, and the answer trace grows
// an "admission" child span recording the estimate and weight.
func TestAdmissionSpanAndAnswerStamp(t *testing.T) {
	e, g := mustEngine(t)
	e.Admission = admission.New(admission.Config{MaxConcurrency: 4})
	e.Tracer = trace.New(0)
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication`)
	ans, err := e.AnswerContext(context.Background(), q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if ans.AdmissionWeight != 1 {
		t.Fatalf("AdmissionWeight = %d, want 1 (cheap query)", ans.AdmissionWeight)
	}
	root := trace.ToJSON(e.Tracer.Root())
	asp := root.Find("admission")
	if asp == nil {
		t.Fatal("no admission span under the answer span")
	}
	if _, ok := asp.Attrs["est_cost"]; !ok {
		t.Fatalf("admission span missing est_cost: %+v", asp.Attrs)
	}
	if _, ok := asp.Attrs["weight"]; !ok {
		t.Fatalf("admission span missing weight: %+v", asp.Attrs)
	}
}

// Per-request engine copies share the gate by pointer, so the gate's
// budget bounds evaluations across all copies. Run under -race.
func TestAdmissionBoundsConcurrentCopies(t *testing.T) {
	e, g := mustEngine(t)
	e.Metrics = metrics.NewRegistry()
	gate := admission.New(admission.Config{
		MaxConcurrency: 2,
		QueueDepth:     64,
		QueueTimeout:   10 * time.Second,
		Metrics:        e.Metrics,
	})
	e.Admission = gate
	q := mustQuery(t, g, "q(x,y) :- x ex:hasAuthor z, z ex:hasName y")
	if _, err := e.Answer(q, RefGCov); err != nil { // warm caches
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := *e // per-request shallow copy, as httpapi does
			ans, err := eng.AnswerContext(context.Background(), q, RefGCov)
			if err != nil {
				errs <- err
				return
			}
			if ans.Rows.Len() != 1 {
				errs <- errWrongRows(RefGCov, ans.Rows.Len())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hw := gate.HighWater(); hw > 2 {
		t.Fatalf("in-flight weight high water %d exceeds budget 2", hw)
	}
	snap := e.Metrics.Snapshot()
	if got := snap.Counters["admission.admitted"]; got < 32 {
		t.Fatalf("admission.admitted = %d, want >= 32", got)
	}
}

// A query whose estimate exceeds the cost ceiling is shed before any
// evaluation work starts.
func TestAdmissionCostCeiling(t *testing.T) {
	e, g := mustEngine(t)
	e.Admission = admission.New(admission.Config{MaxConcurrency: 4, MaxCost: 1e-9})
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication`)
	_, err := e.AnswerContext(context.Background(), q, RefGCov)
	if !errors.Is(err, admission.ErrCostCeiling) {
		t.Fatalf("err = %v, want ErrCostCeiling", err)
	}
}
