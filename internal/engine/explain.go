package engine

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/trace"
)

// Plan is the EXPLAIN (without ANALYZE) surface: how a strategy would
// answer a query, derived entirely from the reformulator and the cost
// model without touching the data. Its tree mirrors the span tree an
// actual execution records, so EXPLAIN and EXPLAIN ANALYZE output line up
// node for node, but carries only estimates — rendering it is
// deterministic, which the golden tests rely on.
type Plan struct {
	Strategy Strategy
	// Cover is the cover underlying the plan (JUCQ-based strategies).
	Cover query.Cover
	// ReformulationCQs counts the CQs the reformulation would evaluate.
	ReformulationCQs int
	// EstimatedCost and EstimatedRows are the model's totals (zero for
	// plain-UCQ strategies whose reformulations are too large to price).
	EstimatedCost float64
	EstimatedRows float64
	// CachedPlan reports the cover came from the plan cache (RefGCov).
	CachedPlan bool

	root *trace.Span
}

// Explain renders the plan as an indented operator tree.
func (p *Plan) Explain() string { return trace.Render(p.root, trace.RenderOptions{}) }

// Tree returns the plan as a JSON span tree (no timings).
func (p *Plan) Tree() *trace.SpanJSON { return trace.ToJSON(p.root) }

// explainMaxUCQPlans bounds how many member-CQ operator plans a plain UCQ
// explanation spells out: Example-1-style reformulations have hundreds of
// thousands of members, so the tree shows the first few and elides the
// rest.
const explainMaxUCQPlans = 3

// Plan explains how strategy s would answer q without executing it.
// RefJUCQ requires a cover via PlanWithCover.
func (e *Engine) Plan(q query.CQ, s Strategy) (*Plan, error) {
	switch s {
	case Sat:
		return e.planSat(q)
	case RefUCQ:
		return e.planUCQ(q, e.Reformulator(), RefUCQ)
	case RefIncomplete:
		return e.planUCQ(q, e.IncompleteReformulator(), RefIncomplete)
	case RefSCQ:
		return e.planCover(q, query.SingletonCover(len(q.Atoms)), RefSCQ)
	case RefGCov:
		return e.planGCov(q)
	case RefRange:
		return e.planRange(q)
	case Dat:
		return e.planDat(q)
	case RefJUCQ:
		return nil, fmt.Errorf("engine: strategy %s needs a cover; use PlanWithCover", s)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %q", s)
	}
}

// PlanWithCover explains the JUCQ plan induced by a caller-chosen cover.
func (e *Engine) PlanWithCover(q query.CQ, cover query.Cover) (*Plan, error) {
	if err := cover.Validate(len(q.Atoms)); err != nil {
		return nil, err
	}
	return e.planCover(q, cover, RefJUCQ)
}

// newPlan starts a plan tree rooted at a "plan" span.
func (e *Engine) newPlan(q query.CQ, s Strategy) (*Plan, *trace.Span) {
	tr := trace.New(0)
	root := tr.StartSpan("plan")
	root.SetStr("strategy", string(s))
	root.SetStr("query", query.FormatCQ(e.g.Dict(), q))
	return &Plan{Strategy: s, root: root}, root
}

//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func (e *Engine) planSat(q query.CQ) (*Plan, error) {
	p, root := e.newPlan(q, Sat)
	// The saturated store stays unsharded, so Sat plans carry no scatter.
	est := explainCQ(root, e.SatCostModel(), e.g.Dict(), q, 1)
	p.ReformulationCQs = 1
	p.EstimatedCost, p.EstimatedRows = est.Cost, est.Card
	return p, nil
}

//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func (e *Engine) planUCQ(q query.CQ, r *core.Reformulator, s Strategy) (*Plan, error) {
	p, root := e.newPlan(q, s)
	count, _ := r.CombinationCount(q)
	p.ReformulationCQs = count
	u := root.Child("union")
	u.SetInt("cqs", int64(count))
	m := e.CostModel()
	shown := 0
	r.EnumerateCQ(q, func(cq query.CQ) bool {
		if shown >= explainMaxUCQPlans {
			return false
		}
		explainCQ(u, m, e.g.Dict(), cq, e.Shards())
		shown++
		return true
	})
	if count > shown {
		el := u.Child("elided")
		el.SetInt("cqs", int64(count-shown))
	}
	return p, nil
}

//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func (e *Engine) planCover(q query.CQ, cover query.Cover, s Strategy) (*Plan, error) {
	bound := e.fragmentBound()
	if s == RefSCQ {
		bound = 0
	}
	j, err := e.Reformulator().ReformulateJUCQ(q, cover, bound)
	if err != nil {
		return nil, err
	}
	p, root := e.newPlan(q, s)
	root.SetStr("cover", cover.String())
	e.explainJUCQ(root, p, j)
	p.Cover = cover
	return p, nil
}

//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func (e *Engine) planGCov(q query.CQ) (*Plan, error) {
	key := query.FormatCQ(e.g.Dict(), q)
	entry, cached := e.plans.get(key)
	e.observePlanCache(cached)
	if !cached {
		res, err := core.GCov(e.Reformulator(), e.CostModel(), q, core.GCovOptions{MaxFragmentCQs: e.fragmentBound()})
		if err != nil {
			return nil, err
		}
		entry = newPlanEntry(key, res)
		evicted := e.plans.put(entry)
		e.Metrics.Counter("engine.plancache.evictions").Add(int64(evicted))
	}
	p, root := e.newPlan(q, RefGCov)
	root.SetStr("cover", entry.cover.String())
	root.SetBool("cached", cached)
	root.SetInt("explored", int64(len(entry.explored)))
	e.explainJUCQ(root, p, entry.jucq)
	p.Cover = entry.cover
	p.CachedPlan = cached
	return p, nil
}

//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func (e *Engine) planDat(q query.CQ) (*Plan, error) {
	p, root := e.newPlan(q, Dat)
	// The Datalog engine evaluates bottom-up to fixpoint; the cost model
	// does not price it, so the plan is purely structural.
	root.Child("encode")
	root.Child("fixpoint")
	p.ReformulationCQs = 1
	return p, nil
}

// explainJUCQ renders a fragment-join plan: one "fragment" node per cover
// block, then "join" nodes in the cost model's greedy order with the
// running estimated cardinality — the same order EXPLAIN ANALYZE traces
// show when the estimates track reality.
//
//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func (e *Engine) explainJUCQ(root *trace.Span, p *Plan, j query.JUCQ) {
	m := e.CostModel()
	d := e.g.Dict()
	shards := e.Shards()
	frags := make([]cost.Estimate, len(j.Fragments))
	n := 0
	for i, f := range j.Fragments {
		frags[i] = m.UCQ(f.UCQ)
		n += len(f.UCQ.CQs)
		fsp := root.Child("fragment")
		fsp.SetInt("idx", int64(i))
		fsp.SetStr("atoms", query.Cover{f.AtomIndexes}.String())
		fsp.SetStr("q", query.FormatCQ(d, f.CQ))
		fsp.SetInt("cqs", int64(len(f.UCQ.CQs)))
		fsp.SetFloat("est_rows", frags[i].Card)
		fsp.SetFloat("est_cost", frags[i].Cost)
		if op := fragmentScatterOp(f.UCQ, shards); op != "" {
			sc := fsp.Child("scatter")
			sc.SetInt("n", int64(shards))
			sc.SetStr("op", op)
		}
	}
	p.ReformulationCQs = n
	// Mirror cost.JoinFragments' greedy order: connected fragments first,
	// smaller estimated cardinality breaking ties.
	cur := frags[0]
	rest := make([]int, 0, len(frags)-1)
	for i := 1; i < len(frags); i++ {
		rest = append(rest, i)
	}
	for len(rest) > 0 {
		best, bestConnected := -1, false
		for i, fi := range rest {
			connected := sharesEstVar(frags[fi], cur)
			switch {
			case best == -1,
				connected && !bestConnected,
				connected == bestConnected && frags[fi].Card < frags[rest[best]].Card:
				best, bestConnected = i, connected
			}
		}
		fi := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		cur = cost.Join(cur, frags[fi])
		jsp := root.Child("join")
		jsp.SetInt("fragment", int64(fi))
		jsp.SetFloat("est_rows", cur.Card)
	}
	est := m.JoinFragments(frags)
	root.SetFloat("est_cost", est.Cost)
	p.EstimatedCost, p.EstimatedRows = est.Cost, est.Card
	prj := root.Child("project")
	prj.SetStr("cols", strings.Join(j.HeadNames, ","))
}

// fragmentScatterOp summarizes how a fragment fans out against a
// sharded source, mirroring the executor: "ucq" when ≥2 member CQs are
// co-partitioned (the group evaluates shard-locally in one scatter, the
// rest on the parent path), "cq" when exactly one member scatters
// shard-locally on its own, "scan" when only unbound-subject scans
// scatter, "" when nothing scatters.
func fragmentScatterOp(u query.UCQ, shards int) string {
	if shards < 2 || len(u.CQs) == 0 {
		return ""
	}
	co, anyScan := 0, false
	for _, cq := range u.CQs {
		if exec.CoPartitionedCQ(cq) {
			co++
			continue
		}
		for _, a := range cq.Atoms {
			if a.Args()[0].IsVar() {
				anyScan = true
				break
			}
		}
	}
	switch {
	case co >= 2:
		return "ucq"
	case co == 1:
		return "cq"
	case anyScan:
		return "scan"
	}
	return ""
}

func sharesEstVar(a, b cost.Estimate) bool {
	for v := range a.V {
		if _, ok := b.V[v]; ok {
			return true
		}
	}
	return false
}

// explainCQ adds the cost model's simulated greedy operator plan for one
// CQ under parent: a "cq" node with one child per operator (scan, then
// inlj/hash joins) carrying the running estimated cardinality. Against a
// sharded source the tree shows the executor's scatter shape: a
// co-partitioned body nests its whole plan under one scatter node
// (evaluated shard-locally N ways), any other body scatters its
// unbound-subject scans individually.
//
//reflint:nospanend plan spans are a rendered tree, never timed; Plan.Tree omits durations
func explainCQ(parent *trace.Span, m *cost.Model, d *dict.Dict, q query.CQ, shards int) cost.Estimate {
	est, steps := m.CQPlan(q)
	csp := parent.Child("cq")
	csp.SetStr("q", query.FormatCQ(d, q))
	csp.SetFloat("est_rows", est.Card)
	csp.SetFloat("est_cost", est.Cost)
	opParent := csp
	if shards > 1 && exec.CoPartitionedCQ(q) {
		sc := csp.Child("scatter")
		sc.SetInt("n", int64(shards))
		sc.SetStr("op", "cq")
		opParent = sc
	}
	for _, st := range steps {
		name := st.Op
		if name == "hash" {
			// The executor names its materialized hash-join spans
			// "hashjoin"; keep EXPLAIN and EXPLAIN ANALYZE aligned.
			name = "hashjoin"
		}
		sp := opParent
		if sp == csp && shards > 1 && name == "scan" && q.Atoms[st.AtomIndex].S.IsVar() {
			sc := csp.Child("scatter")
			sc.SetInt("n", int64(shards))
			sc.SetStr("op", "scan")
			sp = sc
		}
		op := sp.Child(name)
		op.SetStr("atom", query.FormatAtom(d, q.Atoms[st.AtomIndex]))
		op.SetFloat("est_rows", st.Out.Card)
	}
	return est
}
