package engine

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lubm"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// exampleOneEngine builds a Mini-scale LUBM engine and the paper's
// Example 1 query — the fixture the EXPLAIN golden tests render.
func exampleOneEngine(t *testing.T) (*Engine, query.CQ) {
	t.Helper()
	g, err := lubm.NewGraph(lubm.Mini(), 42)
	if err != nil {
		t.Fatal(err)
	}
	univ := lubm.PickExampleOneUniversity(g)
	if univ == "" {
		univ = "http://www.University0.edu"
	}
	q, err := lubm.ExampleOne(g.Dict(), univ)
	if err != nil {
		t.Fatal(err)
	}
	return New(g), q
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./internal/engine/ -run Explain -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// The Explain renderer's output over Example 1 is pinned by golden files
// for the three plan shapes the paper compares: the plain UCQ (huge union,
// elided), the SCQ (singleton cover), and the cost-chosen JUCQ plus the
// paper's hand-picked cover.
func TestExplainGolden(t *testing.T) {
	e, q := exampleOneEngine(t)
	cases := []struct {
		golden string
		plan   func() (*Plan, error)
	}{
		{"explain_ucq.golden", func() (*Plan, error) { return e.Plan(q, RefUCQ) }},
		{"explain_scq.golden", func() (*Plan, error) { return e.Plan(q, RefSCQ) }},
		{"explain_gcov.golden", func() (*Plan, error) { return e.Plan(q, RefGCov) }},
		{"explain_jucq_paper.golden", func() (*Plan, error) {
			return e.PlanWithCover(q, lubm.ExampleOneCover())
		}},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			p, err := c.plan()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.golden, p.Explain())
		})
	}
}

func TestExplainMetadata(t *testing.T) {
	e, q := exampleOneEngine(t)
	p, err := e.Plan(q, RefUCQ)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReformulationCQs < 1000 {
		t.Fatalf("Example 1 UCQ must be huge, got %d CQs", p.ReformulationCQs)
	}
	if p.Tree().Find("union") == nil || p.Tree().Find("elided") == nil {
		t.Fatal("UCQ plan must summarize the union with an elision node")
	}
	p, err = e.Plan(q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if p.CachedPlan {
		t.Fatal("first GCov plan cannot be cached")
	}
	if p.EstimatedCost <= 0 || len(p.Cover) == 0 {
		t.Fatalf("GCov plan missing estimate or cover: %+v", p)
	}
	p2, err := e.Plan(q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CachedPlan {
		t.Fatal("second GCov plan must come from the plan cache")
	}
	if _, err := e.Plan(q, RefJUCQ); err == nil {
		t.Fatal("Plan(RefJUCQ) must demand a cover")
	}
}

// EXPLAIN ANALYZE semantics: answering with a Tracer set must produce a
// span tree where every executor operator carries the estimated
// cardinality next to the actual row count.
func TestAnswerTraceEstimatesAndActuals(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x3) :- x1 ex:hasAuthor x2, x2 ex:hasName x3, x1 x4 "1949"`)
	for _, s := range []Strategy{RefUCQ, RefSCQ, RefGCov, Sat} {
		e.Tracer = trace.New(0)
		ans, err := e.Answer(q, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		root := trace.ToJSON(e.Tracer.Root())
		if root == nil || root.Name != "answer" {
			t.Fatalf("%s: missing answer span", s)
		}
		if got := root.Attrs["rows"].(int64); int(got) != ans.Rows.Len() {
			t.Fatalf("%s: root rows %v != %d", s, got, ans.Rows.Len())
		}
		eval := root.Find("eval")
		if eval == nil {
			t.Fatalf("%s: missing eval span", s)
		}
		scan := root.Find("scan")
		if scan == nil {
			t.Fatalf("%s: no scan operator traced", s)
		}
		if _, ok := scan.Attrs["est_rows"]; !ok {
			t.Fatalf("%s: scan missing est_rows: %+v", s, scan.Attrs)
		}
		if _, ok := scan.Attrs["rows"]; !ok {
			t.Fatalf("%s: scan missing rows: %+v", s, scan.Attrs)
		}
	}
}

func TestMisestimateCounterAndWarning(t *testing.T) {
	e, _ := mustEngine(t)
	e.Metrics = metrics.NewRegistry()
	tr := trace.New(0)
	sp := tr.StartSpan("answer")
	good := sp.Child("scan")
	good.SetFloat("est_rows", 10)
	good.SetInt("rows", 9)
	bad := sp.Child("hashjoin")
	bad.SetFloat("est_rows", 5000)
	bad.SetInt("rows", 3)
	sp.End()
	e.reportMisestimates(sp, RefGCov)
	if got := e.Metrics.Counter("cost.misestimate").Value(); got != 1 {
		t.Fatalf("cost.misestimate = %d, want 1", got)
	}
	// Under the 10x threshold nothing fires.
	e.reportMisestimates(tr.StartSpan("noop"), RefGCov)
	if got := e.Metrics.Counter("cost.misestimate").Value(); got != 1 {
		t.Fatalf("cost.misestimate moved to %d on a clean trace", got)
	}
}
