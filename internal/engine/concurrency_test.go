package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// Concurrent Answer calls through per-request shallow copies of one
// engine must be safe: the copies share the warmed reformulation caches,
// the plan cache and the metrics registry (the same sharing the HTTP
// endpoint relies on). Run under -race.
func TestConcurrentAnswerSharedCaches(t *testing.T) {
	e, g := mustEngine(t)
	e.Metrics = metrics.NewRegistry()
	q := mustQuery(t, g, "q(x,y) :- x ex:hasAuthor z, z ex:hasName y")

	// Warm lazily-built state once so the copies only read it.
	if _, err := e.Answer(q, RefGCov); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				eng := *e // per-request shallow copy, as httpapi does
				eng.Budget.Timeout = 30 * time.Second
				strategies := []Strategy{Sat, RefUCQ, RefSCQ, RefGCov, RefRange}
				s := strategies[(i+j)%len(strategies)]
				ans, err := eng.AnswerContext(context.Background(), q, s)
				if err != nil {
					errs <- err
					return
				}
				if ans.Rows.Len() != 1 {
					errs <- errWrongRows(s, ans.Rows.Len())
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.queries"] == 0 {
		t.Fatal("shared metrics registry recorded no queries")
	}
}

type wrongRowsError struct {
	s Strategy
	n int
}

func (e wrongRowsError) Error() string {
	return "strategy " + string(e.s) + ": wrong row count"
}

func errWrongRows(s Strategy, n int) error { return wrongRowsError{s, n} }

// AnswerContext with an expired context surfaces a budget/cancellation
// error and records it in the registry.
func TestAnswerContextCanceled(t *testing.T) {
	e, g := mustEngine(t)
	e.Metrics = metrics.NewRegistry()
	q := mustQuery(t, g, "q(x) :- x rdf:type ex:Publication")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AnswerContext(ctx, q, RefUCQ); err == nil {
		t.Fatal("want error from canceled context, got nil")
	}
	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.canceled"] == 0 {
		t.Fatalf("engine.canceled not recorded: %+v", snap.Counters)
	}
	if snap.Counters["engine.errors"] == 0 {
		t.Fatalf("engine.errors not recorded: %+v", snap.Counters)
	}
}
