package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/testutil"
	"repro/internal/viewcache"
)

// TestViewCacheAnswersMatchUncached: with the view cache enabled, cold and
// warm answers must equal an uncached engine's answers — the cache is an
// optimization, never a semantics change.
func TestViewCacheAnswersMatchUncached(t *testing.T) {
	cached, g := mustEngine(t)
	cached.EnableViewCache(viewcache.Config{MinCost: -1}) // admit everything
	plain := New(g)
	queries := []string{
		`q(x) :- x rdf:type ex:Publication`,
		`q(x, y) :- x ex:hasAuthor z, z ex:hasName y`,
		`q(x) :- x rdf:type ex:Book, x ex:hasTitle y`,
	}
	for _, text := range queries {
		q := mustQuery(t, g, text)
		for _, s := range []Strategy{RefSCQ, RefGCov} {
			want, err := plain.Answer(q, s)
			if err != nil {
				t.Fatalf("%s %s uncached: %v", text, s, err)
			}
			for pass := 0; pass < 2; pass++ { // cold then warm
				got, err := cached.Answer(q, s)
				if err != nil {
					t.Fatalf("%s %s cached pass %d: %v", text, s, pass, err)
				}
				if !got.Rows.Equal(want.Rows) {
					t.Fatalf("%s %s pass %d: cached %d rows != uncached %d rows",
						text, s, pass, got.Rows.Len(), want.Rows.Len())
				}
			}
		}
	}
	if cached.ViewCache().Len() == 0 {
		t.Fatal("view cache admitted nothing; the equivalence check exercised nothing")
	}
}

// TestViewCacheAnswersMatchUncachedRandom: property-style check over random
// scenarios and random update interleavings — immediately after every
// insert/delete, the cached engine must agree with a freshly built engine
// over the same data (a stale fragment would surface as a row mismatch).
func TestViewCacheAnswersMatchUncachedRandom(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 3
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(77000 + seed)))
			sc, err := testutil.RandomScenario(rng)
			if err != nil {
				t.Fatal(err)
			}
			e := New(sc.Graph)
			e.EnableViewCache(viewcache.Config{MinCost: -1})
			q := sc.RandomQuery(rng)
			decoded := sc.Graph.DecodedData()
			if len(decoded) == 0 {
				t.Skip("empty scenario")
			}
			check := func(step string) {
				fresh := New(e.Graph())
				for _, s := range []Strategy{RefSCQ, RefGCov} {
					a, err := e.Answer(q, s)
					if err != nil {
						t.Fatalf("%s %s cached: %v", step, s, err)
					}
					b, err := fresh.Answer(q, s)
					if err != nil {
						t.Fatalf("%s %s fresh: %v", step, s, err)
					}
					if !a.Rows.Equal(b.Rows) {
						t.Fatalf("%s %s: cached %d rows != fresh %d rows",
							step, s, a.Rows.Len(), b.Rows.Len())
					}
				}
			}
			check("initial")
			check("warm") // second pass over a warmed cache
			for step := 0; step < 5; step++ {
				tr := decoded[rng.Intn(len(decoded))]
				if rng.Intn(2) == 0 {
					if _, err := e.DeleteData([]rdf.Triple{tr}); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := e.InsertData([]rdf.Triple{tr}); err != nil {
						t.Fatal(err)
					}
				}
				check(fmt.Sprintf("step=%d", step))
			}
		})
	}
}

// TestViewCacheConcurrentUpdatesNoStaleReads interleaves InsertData /
// DeleteData with concurrent AnswerContext calls (run under -race). Updates
// take the write lock and queries the read lock — the engine's documented
// contract — so each query observes a settled database state; the assertion
// is that its answer reflects exactly that state, i.e. the view cache never
// serves a fragment from before an already-completed update.
func TestViewCacheConcurrentUpdatesNoStaleReads(t *testing.T) {
	e, g := mustEngine(t)
	e.EnableViewCache(viewcache.Config{MinCost: -1})
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication`)
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }

	const (
		writers    = 2
		readers    = 6
		iterations = 15
	)
	var (
		mu      sync.RWMutex
		present = map[int]bool{} // extra ex:doiN currently inserted
	)
	errs := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 100 + w
			for i := 0; i < iterations; i++ {
				tr := rdf.NewTriple(ex(fmt.Sprintf("doi%d", n)), rdf.Type, ex("Book"))
				mu.Lock()
				var err error
				if present[n] {
					_, err = e.DeleteData([]rdf.Triple{tr})
				} else {
					err = e.InsertData([]rdf.Triple{tr})
				}
				if err == nil {
					present[n] = !present[n]
				}
				mu.Unlock()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			strategies := []Strategy{RefSCQ, RefGCov}
			for i := 0; i < iterations; i++ {
				s := strategies[(r+i)%len(strategies)]
				mu.RLock()
				want := 1 // ex:doi1 is always a Book, hence a Publication
				for _, in := range present {
					if in {
						want++
					}
				}
				eng := *e // per-request shallow copy, as httpapi does
				eng.Budget.Timeout = 30 * time.Second
				ans, err := eng.AnswerContext(context.Background(), q, s)
				mu.RUnlock()
				if err != nil {
					errs <- err
					return
				}
				if ans.Rows.Len() != want {
					errs <- fmt.Errorf("%s: got %d Publications, want %d — stale fragment served",
						s, ans.Rows.Len(), want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
