package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/testutil"
)

const bookGraph = `
@prefix ex: <http://example.org/> .
ex:Book rdfs:subClassOf ex:Publication .
ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
ex:writtenBy rdfs:domain ex:Book .
ex:writtenBy rdfs:range ex:Person .
ex:doi1 a ex:Book .
ex:doi1 ex:writtenBy _:b1 .
ex:doi1 ex:hasTitle "El Aleph" .
_:b1 ex:hasName "J. L. Borges" .
ex:doi1 ex:publishedIn "1949" .
`

func mustEngine(t *testing.T) (*Engine, *graph.Graph) {
	t.Helper()
	g, err := graph.ParseString(bookGraph)
	if err != nil {
		t.Fatal(err)
	}
	return New(g), g
}

func mustQuery(t *testing.T, g *graph.Graph, text string) query.CQ {
	t.Helper()
	q, err := query.ParseRuleWithPrefixes(g.Dict(), map[string]string{"ex": "http://example.org/"}, text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// Every complete strategy must return the same answers on the paper's §3
// example query.
func TestAllCompleteStrategiesAgree(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x3) :- x1 ex:hasAuthor x2, x2 ex:hasName x3, x1 x4 "1949"`)
	want, err := e.Answer(q, Sat)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rows.Len() != 1 {
		t.Fatalf("sat answer count %d, want 1", want.Rows.Len())
	}
	for _, s := range []Strategy{RefUCQ, RefSCQ, RefGCov, RefRange, Dat} {
		got, err := e.Answer(q, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !got.Rows.Equal(want.Rows) {
			t.Fatalf("%s: %d rows != sat %d rows", s, got.Rows.Len(), want.Rows.Len())
		}
	}
	got, err := e.AnswerWithCover(q, query.Cover{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows.Equal(want.Rows) {
		t.Fatal("user cover disagrees")
	}
}

func TestAnswerMetadata(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication`)
	a, err := e.Answer(q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != RefGCov || a.ReformulationCQs == 0 || a.Cover == nil {
		t.Fatalf("metadata missing: %+v", a)
	}
	if len(a.Explored) == 0 {
		t.Fatal("GCov must report its explored space")
	}
	if a.EstimatedCost <= 0 {
		t.Fatal("GCov must report the model estimate")
	}
}

func TestUnknownStrategy(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Book`)
	if _, err := e.Answer(q, Strategy("nope")); err == nil {
		t.Fatal("unknown strategy must error")
	}
	if _, err := e.Answer(q, RefJUCQ); err == nil {
		t.Fatal("RefJUCQ without cover must error")
	}
}

func TestInvalidCover(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Book, x ex:hasTitle y`)
	if _, err := e.AnswerWithCover(q, query.Cover{{0}}); err == nil {
		t.Fatal("incomplete cover must be rejected")
	}
}

func TestSaturationCached(t *testing.T) {
	e, _ := mustEngine(t)
	first := e.Saturation()
	second := e.Saturation()
	if first != second {
		t.Fatal("saturation must be cached")
	}
	if e.SaturationTime() < 0 {
		t.Fatal("bogus saturation time")
	}
}

func TestBudgetPropagates(t *testing.T) {
	e, g := mustEngine(t)
	e.Budget = exec.Budget{Timeout: time.Nanosecond}
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication, x ex:hasTitle y`)
	_, err := e.Answer(q, RefUCQ)
	if !errors.Is(err, exec.ErrBudgetExceeded) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestMaxFragmentCQs(t *testing.T) {
	e, g := mustEngine(t)
	e.MaxFragmentCQs = 1
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication, x ex:hasTitle y`)
	// Publication has 3 reformulations > bound 1: GCov must still work
	// (singleton fragments pruned? no — singleton fragments of size 3
	// exceed 1, so GCov errors: acceptable contract, check it).
	if _, err := e.Answer(q, RefGCov); err == nil {
		t.Fatal("fragment bound below singleton size must error")
	}
	// The fixed SCQ strategy ignores the bound.
	if _, err := e.Answer(q, RefSCQ); err != nil {
		t.Fatalf("SCQ must ignore the fragment bound: %v", err)
	}
}

// TestStrategiesAgreeRandom is the cross-strategy integration property:
// on random scenarios and queries, Sat, RefUCQ, RefSCQ, RefGCov and Dat
// agree; RefIncomplete is always a subset.
func TestStrategiesAgreeRandom(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + seed)))
			sc, err := testutil.RandomScenario(rng)
			if err != nil {
				t.Fatal(err)
			}
			e := New(sc.Graph)
			for qi := 0; qi < 3; qi++ {
				q := sc.RandomQuery(rng)
				want, err := e.Answer(q, Sat)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range []Strategy{RefUCQ, RefSCQ, RefGCov, RefRange, Dat} {
					got, err := e.Answer(q, s)
					if err != nil {
						t.Fatalf("%s: %v", s, err)
					}
					if !got.Rows.Equal(want.Rows) {
						t.Fatalf("query %s: %s %d rows != sat %d rows",
							query.FormatCQ(sc.Graph.Dict(), q), s, got.Rows.Len(), want.Rows.Len())
					}
				}
				inc, err := e.Answer(q, RefIncomplete)
				if err != nil {
					t.Fatalf("incomplete: %v", err)
				}
				if inc.Rows.Len() > want.Rows.Len() {
					t.Fatalf("incomplete Ref returned MORE answers (%d) than complete (%d)",
						inc.Rows.Len(), want.Rows.Len())
				}
			}
		})
	}
}

func TestBooleanQueryAllStrategies(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q() :- x rdf:type ex:Person`)
	for _, s := range []Strategy{Sat, RefUCQ, RefSCQ, RefGCov, RefRange, Dat} {
		a, err := e.Answer(q, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if a.Rows.Len() != 1 {
			t.Fatalf("%s: boolean true expected, got %d rows", s, a.Rows.Len())
		}
	}
}

func TestLazyAccessors(t *testing.T) {
	e, _ := mustEngine(t)
	if e.Store() == nil || e.Stats() == nil || e.CostModel() == nil ||
		e.Reformulator() == nil || e.IncompleteReformulator() == nil ||
		e.SatStore() == nil || e.SatStats() == nil {
		t.Fatal("accessors must build on demand")
	}
	if e.Store() != e.Store() {
		t.Fatal("store must be cached")
	}
	if e.Graph() == nil {
		t.Fatal("graph accessor nil")
	}
}

func TestGCovPlanCache(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Publication, x ex:hasTitle y`)
	first, err := e.Answer(q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if first.CachedPlan {
		t.Fatal("first execution cannot be cached")
	}
	second, err := e.Answer(q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CachedPlan {
		t.Fatal("second execution must hit the plan cache")
	}
	if !second.Rows.Equal(first.Rows) {
		t.Fatal("cached plan changed answers")
	}
	if e.PlanCacheLen() != 1 {
		t.Fatalf("cache size %d, want 1", e.PlanCacheLen())
	}
	// A different constant is a different plan.
	q2 := mustQuery(t, g, `q(x) :- x rdf:type ex:Book, x ex:hasTitle y`)
	if _, err := e.Answer(q2, RefGCov); err != nil {
		t.Fatal(err)
	}
	if e.PlanCacheLen() != 2 {
		t.Fatalf("cache size %d, want 2", e.PlanCacheLen())
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	for _, k := range []string{"a", "b", "c"} {
		c.put(&planEntry{key: k})
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry must be evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("newest entry must remain")
	}
	// Re-putting an existing key refreshes rather than duplicates.
	c.put(&planEntry{key: "c"})
	if c.len() != 2 {
		t.Fatalf("len %d after refresh, want 2", c.len())
	}
	// LRU order: touching b keeps it when d arrives.
	c.get("b")
	c.put(&planEntry{key: "d"})
	if _, ok := c.get("b"); !ok {
		t.Fatal("recently used entry must survive")
	}
	if _, ok := c.get("c"); ok {
		t.Fatal("least recently used entry must be evicted")
	}
}

func TestAnswerUnion(t *testing.T) {
	e, g := mustEngine(t)
	d := g.Dict()
	u, err := query.ParseSPARQLUnion(d, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE {
  { ?x a ex:Person } UNION { ?x a ex:Publication }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.CQs) != 2 {
		t.Fatalf("want 2 members, got %d", len(u.CQs))
	}
	want := -1
	for _, s := range []Strategy{Sat, RefUCQ, RefSCQ, RefGCov, Dat} {
		ans, err := e.AnswerUnion(u, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if want == -1 {
			want = ans.Rows.Len()
		} else if ans.Rows.Len() != want {
			t.Fatalf("%s: %d rows, others %d", s, ans.Rows.Len(), want)
		}
	}
	// _:b1 (Person via range) + doi1 (Publication via subclass) = 2.
	if want != 2 {
		t.Fatalf("union answers = %d, want 2", want)
	}
	if _, err := e.AnswerUnion(query.UCQ{}, Sat); err == nil {
		t.Fatal("empty union must error")
	}
	if _, err := e.AnswerUnion(u, RefJUCQ); err == nil {
		t.Fatal("RefJUCQ must be rejected for unions")
	}
}

func TestAnswerUnionDeduplicates(t *testing.T) {
	e, g := mustEngine(t)
	u, err := query.ParseSPARQLUnion(g.Dict(), `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { { ?x a ex:Book } UNION { ?x a ex:Publication } }`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.AnswerUnion(u, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	// doi1 matches both branches; it must appear once.
	if ans.Rows.Len() != 1 {
		t.Fatalf("want 1 distinct answer, got %d", ans.Rows.Len())
	}
}

// TestLiveUpdates: after interleaved inserts and deletes, every strategy
// on the updated engine agrees with a fresh engine built over the same
// final data.
func TestLiveUpdates(t *testing.T) {
	e, g := mustEngine(t)
	q := mustQuery(t, g, `q(x) :- x rdf:type ex:Person`)

	// Warm every cache first so invalidation is actually exercised.
	for _, s := range []Strategy{Sat, RefGCov, Dat} {
		if _, err := e.Answer(q, s); err != nil {
			t.Fatal(err)
		}
	}

	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }
	// Insert: a second book written by a new person.
	insert := []rdf.Triple{
		rdf.NewTriple(ex("doi2"), ex("writtenBy"), ex("cortazar")),
	}
	if err := e.InsertData(insert); err != nil {
		t.Fatal(err)
	}
	after, err := e.Answer(q, RefGCov)
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows.Len() != 2 {
		t.Fatalf("after insert: want 2 Persons, got %d", after.Rows.Len())
	}
	satAfter, err := e.Answer(q, Sat)
	if err != nil {
		t.Fatal(err)
	}
	if !satAfter.Rows.Equal(after.Rows) {
		t.Fatalf("sat (%d) and ref (%d) disagree after insert", satAfter.Rows.Len(), after.Rows.Len())
	}

	// Delete the original writtenBy: _:b1 stops being a Person.
	removed, err := e.DeleteData([]rdf.Triple{
		rdf.NewTriple(ex("doi1"), ex("writtenBy"), rdf.NewBlank("b1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	final, err := e.Answer(q, Sat)
	if err != nil {
		t.Fatal(err)
	}
	if final.Rows.Len() != 1 {
		t.Fatalf("after delete: want 1 Person, got %d", final.Rows.Len())
	}

	// Cross-check against a fresh engine over the same final data.
	fresh := New(e.Graph())
	for _, s := range []Strategy{Sat, RefSCQ, RefGCov, Dat} {
		a, err := e.Answer(q, s)
		if err != nil {
			t.Fatalf("updated engine %s: %v", s, err)
		}
		b, err := fresh.Answer(q, s)
		if err != nil {
			t.Fatalf("fresh engine %s: %v", s, err)
		}
		if !a.Rows.Equal(b.Rows) {
			t.Fatalf("%s: updated %d rows != fresh %d rows", s, a.Rows.Len(), b.Rows.Len())
		}
	}
}

func TestDeleteUnknownTriples(t *testing.T) {
	e, _ := mustEngine(t)
	removed, err := e.DeleteData([]rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://nope/s"), rdf.NewIRI("http://nope/p"), rdf.NewIRI("http://nope/o")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed %d, want 0", removed)
	}
}

func TestUpdateRejectsSchemaTriples(t *testing.T) {
	e, _ := mustEngine(t)
	bad := []rdf.Triple{rdf.NewTriple(rdf.NewIRI("http://c"), rdf.SubClassOf, rdf.NewIRI("http://d"))}
	if err := e.InsertData(bad); err == nil {
		t.Fatal("schema insert must be rejected")
	}
	if _, err := e.DeleteData(bad); err == nil {
		t.Fatal("schema delete must be rejected")
	}
}

// TestLiveUpdatesRandom: random interleavings of inserts and deletes keep
// the updated engine in agreement with a fresh engine over the same data.
func TestLiveUpdatesRandom(t *testing.T) {
	iters := 15
	if testing.Short() {
		iters = 4
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(12000 + seed)))
			sc, err := testutil.RandomScenario(rng)
			if err != nil {
				t.Fatal(err)
			}
			e := New(sc.Graph)
			q := sc.RandomQuery(rng)
			if _, err := e.Answer(q, RefGCov); err != nil {
				t.Fatal(err)
			}
			decoded := sc.Graph.DecodedData()
			if len(decoded) == 0 {
				t.Skip("empty scenario")
			}
			for step := 0; step < 10; step++ {
				tr := decoded[rng.Intn(len(decoded))]
				if rng.Intn(2) == 0 {
					if _, err := e.DeleteData([]rdf.Triple{tr}); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := e.InsertData([]rdf.Triple{tr}); err != nil {
						t.Fatal(err)
					}
				}
			}
			fresh := New(e.Graph())
			for _, s := range []Strategy{Sat, RefGCov, Dat} {
				a, err := e.Answer(q, s)
				if err != nil {
					t.Fatalf("%s: %v", s, err)
				}
				b, err := fresh.Answer(q, s)
				if err != nil {
					t.Fatalf("fresh %s: %v", s, err)
				}
				if !a.Rows.Equal(b.Rows) {
					t.Fatalf("%s: updated %d rows != fresh %d rows", s, a.Rows.Len(), b.Rows.Len())
				}
			}
		})
	}
}
