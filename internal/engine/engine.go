// Package engine ties the substrates together into the query answering
// strategies the demo compares (§5): Sat (saturation), Ref with a fixed
// UCQ or SCQ reformulation, Ref with a user-chosen cover (JUCQ), Ref with
// the cost-based GCov cover, the fixed *incomplete* Ref of native RDF
// platforms, and Dat (the Datalog encoding).
package engine

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datalog"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/saturation"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/viewcache"
)

// Strategy names a query answering technique.
type Strategy string

// The available strategies.
const (
	// Sat evaluates the query directly against the saturated graph G∞.
	Sat Strategy = "sat"
	// RefUCQ evaluates the CQ→UCQ reformulation of [9] against the
	// explicit data.
	RefUCQ Strategy = "ref-ucq"
	// RefSCQ evaluates the semi-conjunctive reformulation of [15].
	RefSCQ Strategy = "ref-scq"
	// RefJUCQ evaluates the JUCQ induced by a caller-chosen cover.
	RefJUCQ Strategy = "ref-jucq"
	// RefGCov evaluates the JUCQ of the cover selected by the greedy
	// cost-based search (the paper's contribution).
	RefGCov Strategy = "ref-gcov"
	// RefRange evaluates the range reformulation: under the hierarchy-aware
	// interval ID encoding each CQ reformulates into a handful of range CQs
	// whose interval-constrained scans stand for whole hierarchy unions.
	RefRange Strategy = "ref-range"
	// RefIncomplete evaluates the UCQ reformulation restricted to
	// subClassOf/subPropertyOf rules — the fixed incomplete strategy of
	// Virtuoso/AllegroGraph per [6]. Its answers may be incomplete.
	RefIncomplete Strategy = "ref-incomplete"
	// Dat encodes graph, constraints and query into a Datalog program.
	Dat Strategy = "datalog"
)

// Strategies lists every strategy in presentation order.
var Strategies = []Strategy{Sat, RefUCQ, RefSCQ, RefJUCQ, RefGCov, RefRange, RefIncomplete, Dat}

// Answer is the outcome of answering one query with one strategy.
type Answer struct {
	Strategy Strategy
	Rows     *exec.Relation
	// Cover is the cover used (JUCQ-based strategies).
	Cover query.Cover
	// ReformulationCQs counts the CQs in the reformulation evaluated
	// (total across fragments for JUCQ strategies; 1 for Sat/Dat).
	ReformulationCQs int
	// PrepTime covers reformulation / cover search / program encoding
	// (saturation time is reported separately: it is shared across
	// queries; see Engine.SaturationTime).
	PrepTime time.Duration
	// EvalTime covers evaluation proper.
	EvalTime time.Duration
	// Explored is GCov's explored cover space (RefGCov only).
	Explored []core.Explored
	// EstimatedCost is the model's estimate for the evaluated
	// reformulation (JUCQ strategies only).
	EstimatedCost float64
	// CachedPlan reports that the cover came from the engine's plan cache
	// (RefGCov only): PrepTime then excludes the cover search.
	CachedPlan bool
	// CachedFragments counts the JUCQ fragments served from the view
	// cache (zero when the cache is disabled or the strategy does not
	// evaluate fragments).
	CachedFragments int
	// QueueWait is the time the evaluation spent queued at the admission
	// gate (zero without a gate, or when admitted immediately).
	QueueWait time.Duration
	// AdmissionWeight is the gate weight the evaluation held (zero
	// without a gate). Union answers report the heaviest member.
	AdmissionWeight int
	// FragmentSigs are the hex-encoded canonical signatures of the
	// evaluated JUCQ fragments, aligned with the plan's fragment order —
	// the same identity the view cache keys on, so a workload journal can
	// correlate fragment frequency with cache behavior. Populated for
	// fragment-evaluating strategies only when Engine.CaptureFragmentSigs
	// is set (GCov plans reuse the plan cache's precomputed keys, so the
	// warm path pays only a hex encoding).
	FragmentSigs []string
}

// Engine answers queries over one graph with any strategy. It lazily
// builds and caches the store, statistics, saturation and reformulators.
// An Engine is not safe for concurrent use.
type Engine struct {
	g *graph.Graph

	// Budget bounds each evaluation (zero: unlimited).
	Budget exec.Budget
	// Parallel enables parallel UCQ evaluation.
	Parallel bool
	// MaxFragmentCQs bounds per-fragment reformulation sizes for the
	// JUCQ strategies (zero: core.DefaultMaxFragmentCQs).
	MaxFragmentCQs int
	// Metrics, when non-nil, receives per-strategy query counts and
	// latency histograms, reformulation sizes, plan-cache traffic and
	// executor row counters. The registry is safe to share across the
	// per-request engine copies the HTTP layer makes.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records a span tree per answered query:
	// reformulate / plan / eval phases and one span per executor operator
	// with estimated next to actual cardinalities. Like the engine itself
	// a tracer is per-query state — the HTTP layer sets a fresh one on
	// each per-request engine copy.
	Tracer *trace.Tracer
	// Logger, when non-nil, receives structured warnings, e.g. cost-model
	// misestimates detected on traced queries.
	Logger *slog.Logger
	// Admission, when non-nil, gates every evaluation: after
	// reformulation/planning prices the query, the evaluation phase
	// acquires gate slots proportional to the estimate and may queue,
	// shed (admission.ErrRejected) or — while queued — be canceled.
	// Like the plan cache it is shared by pointer across the per-request
	// engine copies the HTTP layer makes. Queue wait does not consume
	// Budget.Timeout: the budget clock starts at evaluation.
	Admission *admission.Gate
	// CaptureFragmentSigs stamps Answer.FragmentSigs on fragment-evaluating
	// strategies — set by the HTTP layer when a workload journal or the
	// /v1/stats aggregator is consuming them.
	CaptureFragmentSigs bool

	store    *storage.Store
	shards   int
	sharded  *shard.Store
	st       *stats.Stats
	model    *cost.Model
	satModel *cost.Model
	ref      *core.Reformulator
	incRef   *core.Reformulator
	rangeRef *core.RangeReformulator
	satRes   *saturation.Result
	satStore *storage.Store
	satStats *stats.Stats
	satTime  time.Duration
	plans    *planCache

	// views, when non-nil, is the fragment-level view cache
	// (internal/viewcache). Like the plan cache it is shared — by pointer
	// — across the per-request engine copies the HTTP layer makes, and
	// invalidated on InsertData/DeleteData.
	views *viewcache.Cache
	// viewStrategies restricts which strategies consult views; nil means
	// every fragment-evaluating strategy (RefSCQ, RefJUCQ, RefGCov).
	viewStrategies map[Strategy]bool

	// maintained is the counting-based closure backing live updates
	// (see update.go); nil until the first Insert/DeleteData.
	maintained *saturation.Maintained
}

// New returns an engine over the graph.
func New(g *graph.Graph) *Engine { return &Engine{g: g, plans: newPlanCache(0)} }

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Store returns the store over explicit data plus the closed schema (the
// database Ref strategies evaluate against), building it on first use.
func (e *Engine) Store() *storage.Store {
	if e.store == nil {
		e.store = storage.Build(e.g.Dict(), e.g.AllTriples())
	}
	return e.store
}

// EnableSharding hash-partitions the explicit-data store into n shards:
// Source() then returns a shard.Store whose scans the executor scatters
// across shards in parallel, and the cost model prices scans at 1/n.
// n < 2 disables sharding. Call before serving: per-request engine
// copies share the built shard store by pointer. The saturated store
// (Sat strategy) stays unsharded — saturation is the paper's baseline
// and its store is rebuilt wholesale on every schema change anyway.
func (e *Engine) EnableSharding(n int) {
	if n < 2 {
		n = 0
	}
	e.shards = n
	e.sharded, e.store, e.st, e.model = nil, nil, nil, nil
}

// Shards returns the configured shard count (0 or 1 when unsharded).
func (e *Engine) Shards() int {
	if e.shards < 2 {
		return 1
	}
	return e.shards
}

// Sharded returns the partitioned store when sharding is enabled (nil
// otherwise), building it on first use. The admin topology surface uses
// the concrete type; evaluation paths go through Source().
func (e *Engine) Sharded() *shard.Store {
	if e.shards < 2 {
		return nil
	}
	if e.sharded == nil {
		e.sharded = shard.Build(e.g.Dict(), e.g.AllTriples(), e.shards)
		e.sharded.PublishMetrics(e.Metrics)
	}
	return e.sharded
}

// Source returns the scan source the Ref strategies evaluate against:
// the sharded store when sharding is enabled, the plain store otherwise.
func (e *Engine) Source() exec.Source {
	if sh := e.Sharded(); sh != nil {
		return sh
	}
	return e.Store()
}

// Stats returns collected statistics over Source().
func (e *Engine) Stats() *stats.Stats {
	if e.st == nil {
		if sh := e.Sharded(); sh != nil {
			e.st = stats.Collect(sh)
		} else {
			e.st = stats.Collect(e.Store())
		}
	}
	return e.st
}

// CostModel returns the cost model over Stats().
func (e *Engine) CostModel() *cost.Model {
	if e.model == nil {
		e.model = cost.NewModel(e.Stats())
		e.model.SetShards(e.Shards())
	}
	return e.model
}

// SatCostModel returns a cost model over the saturated store's statistics
// (the estimates relevant to the Sat strategy's operators).
func (e *Engine) SatCostModel() *cost.Model {
	if e.satModel == nil {
		e.satModel = cost.NewModel(e.SatStats())
	}
	return e.satModel
}

// Reformulator returns the complete reformulator for the graph's schema.
func (e *Engine) Reformulator() *core.Reformulator {
	if e.ref == nil {
		e.ref = core.NewReformulator(e.g.Schema())
	}
	return e.ref
}

// RangeReformulator returns the interval-encoding reformulator for the
// graph's schema.
func (e *Engine) RangeReformulator() *core.RangeReformulator {
	if e.rangeRef == nil {
		e.rangeRef = core.NewRangeReformulator(e.g.Schema())
	}
	return e.rangeRef
}

// IncompleteReformulator returns the subsumption-only reformulator.
func (e *Engine) IncompleteReformulator() *core.Reformulator {
	if e.incRef == nil {
		e.incRef = core.NewIncompleteReformulator(e.g.Schema())
	}
	return e.incRef
}

// Saturation returns the cached saturation result, computing it on first
// use.
func (e *Engine) Saturation() *saturation.Result {
	if e.satRes == nil {
		start := time.Now()
		e.satRes = saturation.Saturate(e.g)
		e.satTime = time.Since(start)
	}
	return e.satRes
}

// SaturationTime returns the wall-clock time the (first) saturation took.
func (e *Engine) SaturationTime() time.Duration {
	e.Saturation()
	return e.satTime
}

// SatStore returns the store over G∞.
func (e *Engine) SatStore() *storage.Store {
	if e.satStore == nil {
		e.satStore = storage.Build(e.g.Dict(), e.Saturation().Triples)
	}
	return e.satStore
}

// SatStats returns statistics over the saturated store.
func (e *Engine) SatStats() *stats.Stats {
	if e.satStats == nil {
		e.satStats = stats.Collect(e.SatStore())
	}
	return e.satStats
}

func (e *Engine) evaluator(st exec.Source, ss *stats.Stats) *exec.Evaluator {
	ev := exec.New(st, ss)
	ev.Budget = e.Budget
	ev.Parallel = e.Parallel
	ev.Metrics = e.Metrics
	return ev
}

// EnableViewCache attaches a fragment-level view cache to the engine. The
// cache inherits the engine's metrics registry unless cfg names its own.
// With no strategies given, every fragment-evaluating strategy (RefSCQ,
// RefJUCQ, RefGCov) consults it; otherwise only the listed ones do. Call
// before serving: per-request engine copies share the cache by pointer.
func (e *Engine) EnableViewCache(cfg viewcache.Config, strategies ...Strategy) {
	if cfg.Metrics == nil {
		cfg.Metrics = e.Metrics
	}
	e.views = viewcache.New(cfg)
	e.viewStrategies = nil
	if len(strategies) > 0 {
		e.viewStrategies = make(map[Strategy]bool, len(strategies))
		for _, s := range strategies {
			e.viewStrategies[s] = true
		}
	}
}

// DisableViewCache detaches the view cache.
func (e *Engine) DisableViewCache() { e.views, e.viewStrategies = nil, nil }

// ViewCache returns the attached view cache, nil when disabled.
func (e *Engine) ViewCache() *viewcache.Cache { return e.views }

// attachViewCache hooks the view cache into one evaluator when the cache
// is on for the strategy; returns the per-answer outcome accumulator (nil
// when detached). Admission needs fragment cost estimates, so the cost
// model is attached even on untraced queries.
func (e *Engine) attachViewCache(ev *exec.Evaluator, s Strategy) *exec.CacheStats {
	if e.views == nil || (e.viewStrategies != nil && !e.viewStrategies[s]) {
		return nil
	}
	ev.FragCache = e.views
	ev.Cost = e.CostModel()
	cs := &exec.CacheStats{}
	ev.CacheStats = cs
	return cs
}

// SetPlanCacheCapacity resizes the GCov plan cache (default 128),
// dropping any cached plans. Call before serving.
func (e *Engine) SetPlanCacheCapacity(n int) { e.plans = newPlanCache(n) }

func (e *Engine) fragmentBound() int {
	if e.MaxFragmentCQs > 0 {
		return e.MaxFragmentCQs
	}
	return core.DefaultMaxFragmentCQs
}

// Answer answers q with the given strategy; RefJUCQ requires a cover via
// AnswerWithCover.
func (e *Engine) Answer(q query.CQ, s Strategy) (*Answer, error) {
	return e.AnswerContext(context.Background(), q, s)
}

// AnswerContext is Answer bounded by ctx: cancellation (client disconnect,
// server shutdown) aborts the evaluation mid-operator with an error
// wrapping exec.ErrCanceled. The context and the Budget's timeout are
// checked together at every operator checkpoint.
func (e *Engine) AnswerContext(ctx context.Context, q query.CQ, s Strategy) (*Answer, error) {
	start := time.Now()
	sp := e.startAnswerSpan(q, s)
	defer sp.End()
	ans, err := e.answer(ctx, q, s, sp)
	e.endAnswerSpan(sp, s, ans, err)
	e.observe(s, start, ans, err)
	return ans, err
}

// startAnswerSpan opens the per-query lifecycle span: the trace root when
// the tracer is fresh, a child of it when an outer layer (HTTP handler)
// already opened one. Nil-safe without a tracer.
func (e *Engine) startAnswerSpan(q query.CQ, s Strategy) *trace.Span {
	sp := e.Tracer.StartSpan("answer")
	sp.SetStr("strategy", string(s))
	sp.SetStr("query", query.FormatCQ(e.g.Dict(), q))
	return sp
}

func (e *Engine) endAnswerSpan(sp *trace.Span, s Strategy, ans *Answer, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.SetStr("error", err.Error())
	} else if ans != nil && ans.Rows != nil {
		sp.SetInt("rows", int64(ans.Rows.Len()))
	}
	sp.End()
	e.reportMisestimates(sp, s)
}

func (e *Engine) answer(ctx context.Context, q query.CQ, s Strategy, sp *trace.Span) (*Answer, error) {
	switch s {
	case Sat:
		return e.answerSat(ctx, q, sp)
	case RefUCQ:
		return e.answerUCQ(ctx, q, e.Reformulator(), RefUCQ, sp)
	case RefSCQ:
		return e.answerCover(ctx, q, query.SingletonCover(len(q.Atoms)), RefSCQ, sp)
	case RefGCov:
		return e.answerGCov(ctx, q, sp)
	case RefRange:
		return e.answerRange(ctx, q, sp)
	case RefIncomplete:
		return e.answerUCQ(ctx, q, e.IncompleteReformulator(), RefIncomplete, sp)
	case Dat:
		return e.answerDat(ctx, q, sp)
	case RefJUCQ:
		return nil, fmt.Errorf("engine: strategy %s needs a cover; use AnswerWithCover", s)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %q", s)
	}
}

// misestimateFactor is the est-vs-actual deviation beyond which a traced
// operator counts as a cost-model misestimate.
const misestimateFactor = 10.0

// reportMisestimates walks a finished query trace and flags every operator
// whose actual cardinality deviates from the model's estimate by more than
// misestimateFactor: one counter increment per offending node plus a
// single structured warning naming the worst one — the direct feedback
// loop for the paper's cost function.
func (e *Engine) reportMisestimates(sp *trace.Span, s Strategy) {
	if sp == nil || (e.Metrics == nil && e.Logger == nil) {
		return
	}
	type miss struct {
		name     string
		est, act float64
	}
	var worst miss
	worstRatio, count := 0.0, 0
	sp.Visit(func(name string, _ int, _ time.Duration, attrs []trace.Attr) {
		est, act := -1.0, -1.0
		for _, a := range attrs {
			if !a.IsNumber() {
				continue
			}
			switch a.Key {
			case "est_rows":
				est = a.Number()
			case "rows":
				act = a.Number()
			}
		}
		if est < 0 || act < 0 {
			return
		}
		// +1 smoothing keeps empty results comparable (0 est vs 0 actual
		// is a perfect estimate, not a division by zero).
		ratio := (est + 1) / (act + 1)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		// Every pair is a calibration sample: the q-error histograms feed
		// GET /v1/debug/costmodel, which ranks operator types by how badly
		// the model estimates them — not only the >10x outliers.
		if e.Metrics != nil {
			e.Metrics.Histogram("qerror."+name, metrics.DefaultQErrorBuckets...).Observe(ratio)
		}
		if ratio <= misestimateFactor {
			return
		}
		count++
		if ratio > worstRatio {
			worstRatio, worst = ratio, miss{name: name, est: est, act: act}
		}
	})
	if count == 0 {
		return
	}
	if e.Metrics != nil {
		e.Metrics.Counter("cost.misestimate").Add(int64(count))
	}
	if e.Logger != nil {
		e.Logger.Warn("cost misestimate",
			"strategy", string(s),
			"nodes", count,
			"worst_op", worst.name,
			"est_rows", worst.est,
			"actual_rows", worst.act,
			"ratio", worstRatio)
	}
}

// AnswerWithCover answers q with the JUCQ induced by the given cover.
func (e *Engine) AnswerWithCover(q query.CQ, cover query.Cover) (*Answer, error) {
	return e.AnswerWithCoverContext(context.Background(), q, cover)
}

// AnswerWithCoverContext is AnswerWithCover bounded by ctx.
func (e *Engine) AnswerWithCoverContext(ctx context.Context, q query.CQ, cover query.Cover) (*Answer, error) {
	start := time.Now()
	sp := e.startAnswerSpan(q, RefJUCQ)
	defer sp.End()
	ans, err := e.answerCover(ctx, q, cover, RefJUCQ, sp)
	e.endAnswerSpan(sp, RefJUCQ, ans, err)
	e.observe(RefJUCQ, start, ans, err)
	return ans, err
}

// observe records one answered (or failed) query into the metrics
// registry; a no-op without one.
func (e *Engine) observe(s Strategy, start time.Time, ans *Answer, err error) {
	m := e.Metrics
	if m == nil {
		return
	}
	m.Counter("engine.queries").Inc()
	m.Counter("engine.queries." + string(s)).Inc()
	m.Histogram("engine.latency_ms." + string(s)).
		Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		m.Counter("engine.errors").Inc()
		switch {
		case errors.Is(err, admission.ErrRejected):
			m.Counter("engine.shed").Inc()
		case errors.Is(err, exec.ErrBudgetExceeded):
			m.Counter("engine.budget_exceeded").Inc()
		case errors.Is(err, exec.ErrCanceled):
			m.Counter("engine.canceled").Inc()
		}
		return
	}
	m.Histogram("engine.reformulation_cqs", metrics.DefaultSizeBuckets...).
		Observe(float64(ans.ReformulationCQs))
	if s == RefGCov {
		if ans.CachedPlan {
			m.Counter("engine.plancache.hits").Inc()
		} else {
			m.Counter("engine.plancache.misses").Inc()
		}
	}
}

// admit passes one evaluation through the engine's admission gate,
// recording the wait as an "admission" span under the answer span. The
// returned ticket is nil-tolerant: callers defer ticket.Release()
// unconditionally. A nil gate admits immediately with no span.
func (e *Engine) admit(ctx context.Context, sp *trace.Span, estCost float64) (*admission.Ticket, error) {
	if e.Admission == nil {
		return nil, nil
	}
	var asp *trace.Span
	if sp != nil {
		asp = sp.Child("admission")
		defer asp.End()
		asp.SetFloat("est_cost", estCost)
	}
	tkt, err := e.Admission.Acquire(ctx, estCost)
	if asp != nil {
		if err != nil {
			asp.SetStr("error", err.Error())
		} else {
			asp.SetInt("weight", int64(tkt.Weight()))
			asp.SetFloat("wait_ms", float64(tkt.Wait())/float64(time.Millisecond))
		}
		asp.End()
	}
	return tkt, err
}

// stampAdmission copies an admitted ticket's observables onto a built
// answer; a no-op for nil tickets (gate disabled).
func stampAdmission(ans *Answer, tkt *admission.Ticket) {
	if tkt == nil || ans == nil {
		return
	}
	ans.QueueWait = tkt.Wait()
	ans.AdmissionWeight = tkt.Weight()
}

// startEval opens the "eval" phase span and wires the evaluator for
// per-operator tracing (span parent plus the cost model used for operator
// estimates). Returns nil (and leaves the evaluator untouched) without a
// trace.
func startEval(sp *trace.Span, ev *exec.Evaluator, m *cost.Model) *trace.Span {
	if sp == nil {
		return nil
	}
	es := sp.Child("eval")
	ev.Span = es
	ev.Cost = m
	return es
}

// endEval closes the eval span, recording the result size.
func endEval(es *trace.Span, rows *exec.Relation) {
	if es == nil {
		return
	}
	if rows != nil {
		es.SetInt("rows", int64(rows.Len()))
	}
	es.End()
}

func (e *Engine) answerSat(ctx context.Context, q query.CQ, sp *trace.Span) (*Answer, error) {
	st := e.SatStore()
	ss := e.SatStats()
	est, _ := e.SatCostModel().CQPlan(q)
	tkt, err := e.admit(ctx, sp, est.Cost)
	if err != nil {
		return nil, err
	}
	defer tkt.Release()
	ev := e.evaluator(st, ss)
	ev.MaxParallel = tkt.Weight()
	es := startEval(sp, ev, e.SatCostModel())
	defer es.End()
	start := time.Now()
	rows, err := ev.EvalCQContext(ctx, query.HeadVarNames(q), q)
	if err != nil {
		endEval(es, nil)
		return nil, err
	}
	endEval(es, rows)
	ans := &Answer{Strategy: Sat, Rows: rows, ReformulationCQs: 1, EvalTime: time.Since(start)}
	stampAdmission(ans, tkt)
	return ans, nil
}

func (e *Engine) answerUCQ(ctx context.Context, q query.CQ, r *core.Reformulator, s Strategy, sp *trace.Span) (*Answer, error) {
	ev := e.evaluator(e.Source(), e.Stats())
	head := query.HeadVarNames(q)
	prepStart := time.Now()
	var rsp *trace.Span
	if sp != nil {
		rsp = sp.Child("reformulate")
		defer rsp.End()
	}
	count, _ := r.CombinationCount(q)
	if rsp != nil {
		rsp.SetInt("cqs", int64(count))
		rsp.End()
	}
	prep := time.Since(prepStart)
	// The stream enumerates reformulations lazily, so there is no JUCQ
	// plan to price; a per-CQ estimate times the reformulation count is
	// the natural upper-bound proxy.
	est, _ := e.CostModel().CQPlan(q)
	tkt, err := e.admit(ctx, sp, est.Cost*float64(count))
	if err != nil {
		return nil, err
	}
	defer tkt.Release()
	ev.MaxParallel = tkt.Weight()
	es := startEval(sp, ev, e.CostModel())
	defer es.End()
	start := time.Now()
	rows, err := ev.EvalUCQStreamContext(ctx, head, func(fn func(query.CQ) bool) {
		r.EnumerateCQ(q, fn)
	})
	if err != nil {
		endEval(es, nil)
		return nil, err
	}
	endEval(es, rows)
	ans := &Answer{
		Strategy: s, Rows: rows, ReformulationCQs: count,
		PrepTime: prep, EvalTime: time.Since(start),
	}
	stampAdmission(ans, tkt)
	return ans, nil
}

func (e *Engine) answerCover(ctx context.Context, q query.CQ, cover query.Cover, s Strategy, sp *trace.Span) (*Answer, error) {
	prepStart := time.Now()
	var rsp *trace.Span
	if sp != nil {
		rsp = sp.Child("reformulate")
		defer rsp.End()
		rsp.SetStr("cover", cover.String())
	}
	bound := e.fragmentBound()
	if s == RefSCQ {
		// The SCQ is a fixed strategy: it is built regardless of size.
		bound = 0
	}
	j, err := e.Reformulator().ReformulateJUCQ(q, cover, bound)
	if err != nil {
		return nil, err
	}
	est := e.CostModel().JUCQ(j)
	n := 0
	for _, f := range j.Fragments {
		n += len(f.UCQ.CQs)
	}
	if rsp != nil {
		rsp.SetInt("cqs", int64(n))
		rsp.SetFloat("est_cost", est.Cost)
		rsp.End()
	}
	prep := time.Since(prepStart)
	tkt, err := e.admit(ctx, sp, est.Cost)
	if err != nil {
		return nil, err
	}
	defer tkt.Release()
	ev := e.evaluator(e.Source(), e.Stats())
	ev.MaxParallel = tkt.Weight()
	cs := e.attachViewCache(ev, s)
	es := startEval(sp, ev, e.CostModel())
	defer es.End()
	start := time.Now()
	rows, err := ev.EvalJUCQContext(ctx, j)
	if err != nil {
		endEval(es, nil)
		return nil, err
	}
	endEval(es, rows)
	ans := &Answer{
		Strategy: s, Rows: rows, Cover: cover, ReformulationCQs: n,
		PrepTime: prep, EvalTime: time.Since(start), EstimatedCost: est.Cost,
	}
	if cs != nil {
		ans.CachedFragments = int(cs.Hits.Load())
	}
	if e.CaptureFragmentSigs {
		ans.FragmentSigs = fragmentSigsJUCQ(j)
	}
	stampAdmission(ans, tkt)
	return ans, nil
}

// fragmentSigsJUCQ computes each fragment's view-cache signature,
// hex-encoded for JSON/journal friendliness.
func fragmentSigsJUCQ(j query.JUCQ) []string {
	out := make([]string, len(j.Fragments))
	for i, f := range j.Fragments {
		out[i] = hex.EncodeToString([]byte(viewcache.Signature(f.UCQ)))
	}
	return out
}

// hexSigs hex-encodes raw view-cache signatures (e.g. a plan-cache
// entry's precomputed fragment keys).
func hexSigs(raw []string) []string {
	out := make([]string, len(raw))
	for i, s := range raw {
		out[i] = hex.EncodeToString([]byte(s))
	}
	return out
}

func (e *Engine) answerGCov(ctx context.Context, q query.CQ, sp *trace.Span) (*Answer, error) {
	key := query.FormatCQ(e.g.Dict(), q)
	prepStart := time.Now()
	var psp *trace.Span
	if sp != nil {
		psp = sp.Child("plan")
		defer psp.End()
	}
	entry, cached := e.plans.get(key)
	e.observePlanCache(cached)
	if !cached {
		res, err := core.GCov(e.Reformulator(), e.CostModel(), q, core.GCovOptions{MaxFragmentCQs: e.fragmentBound()})
		if err != nil {
			return nil, err
		}
		entry = newPlanEntry(key, res)
		evicted := e.plans.put(entry)
		e.Metrics.Counter("engine.plancache.evictions").Add(int64(evicted))
	}
	if psp != nil {
		psp.SetBool("cached", cached)
		psp.SetStr("cover", entry.cover.String())
		psp.SetFloat("est_cost", entry.cost)
		psp.SetInt("explored", int64(len(entry.explored)))
		psp.End()
	}
	prep := time.Since(prepStart)
	tkt, err := e.admit(ctx, sp, entry.cost)
	if err != nil {
		return nil, err
	}
	defer tkt.Release()
	ev := e.evaluator(e.Source(), e.Stats())
	ev.MaxParallel = tkt.Weight()
	cs := e.attachViewCache(ev, RefGCov)
	if cs != nil {
		// The plan's fragment signatures were computed when it was built;
		// hand them to the evaluator so warm executions skip per-fragment
		// canonicalization.
		ev.FragKeys = entry.fragKeys
	}
	es := startEval(sp, ev, e.CostModel())
	defer es.End()
	start := time.Now()
	rows, err := ev.EvalJUCQContext(ctx, entry.jucq)
	if err != nil {
		endEval(es, nil)
		return nil, err
	}
	endEval(es, rows)
	n := 0
	for _, f := range entry.jucq.Fragments {
		n += len(f.UCQ.CQs)
	}
	ans := &Answer{
		Strategy: RefGCov, Rows: rows, Cover: entry.cover, ReformulationCQs: n,
		PrepTime: prep, EvalTime: time.Since(start),
		Explored: entry.explored, EstimatedCost: entry.cost, CachedPlan: cached,
	}
	if cs != nil {
		ans.CachedFragments = int(cs.Hits.Load())
	}
	if e.CaptureFragmentSigs {
		ans.FragmentSigs = hexSigs(entry.fragKeys)
	}
	stampAdmission(ans, tkt)
	return ans, nil
}

// observePlanCache records one plan-cache lookup. The lookup-site counters
// (plancache.hit / plancache.miss, exposed as plancache_total{event=...})
// complement the per-successful-answer engine.plancache.* counters in
// observe: a lookup that hits but whose evaluation then fails still counts
// here.
func (e *Engine) observePlanCache(hit bool) {
	if hit {
		e.Metrics.Counter("plancache.hit").Inc()
	} else {
		e.Metrics.Counter("plancache.miss").Inc()
	}
}

// PlanCacheLen reports how many GCov plans the engine currently caches.
func (e *Engine) PlanCacheLen() int {
	if e.plans == nil {
		return 0
	}
	return e.plans.len()
}

func (e *Engine) answerDat(ctx context.Context, q query.CQ, sp *trace.Span) (*Answer, error) {
	// The fixpoint touches the whole graph regardless of the query, so
	// the data size is the natural cost proxy. Admit before the timeout
	// wrap below: queue wait must not consume the evaluation budget.
	tkt, err := e.admit(ctx, sp, float64(e.g.DataCount()))
	if err != nil {
		return nil, err
	}
	defer tkt.Release()
	// The exec strategies convert Budget.Timeout into a guard deadline;
	// the Datalog fixpoint has no guard, so carry the budget as a context
	// deadline instead and let RunContext's per-round poll enforce it.
	if t := e.Budget.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	prepStart := time.Now()
	var rsp *trace.Span
	if sp != nil {
		rsp = sp.Child("reformulate")
		defer rsp.End()
	}
	p := datalog.EncodeGraph(e.g)
	if err := datalog.AddQuery(p, q); err != nil {
		return nil, err
	}
	if rsp != nil {
		rsp.SetInt("rules", int64(len(p.Rules)))
		rsp.End()
	}
	prep := time.Since(prepStart)
	var es *trace.Span
	if sp != nil {
		es = sp.Child("eval")
		defer es.End()
	}
	start := time.Now()
	eng, err := datalog.RunContext(ctx, p)
	if err != nil {
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			return nil, fmt.Errorf("%w: timeout: %v", exec.ErrBudgetExceeded, err)
		case ctx.Err() != nil:
			return nil, fmt.Errorf("%w: %v", exec.ErrCanceled, err)
		}
		return nil, err
	}
	tuples := eng.Tuples(datalog.AnswerPred)
	rows := exec.NewRelation(query.HeadVarNames(q))
	for _, t := range tuples {
		rows.Append(t)
	}
	rows.Distinct()
	endEval(es, rows)
	ans := &Answer{
		Strategy: Dat, Rows: rows, ReformulationCQs: 1,
		PrepTime: prep, EvalTime: time.Since(start),
	}
	stampAdmission(ans, tkt)
	return ans, nil
}

// AnswerUnion answers a union of BGPs (the full dialect of §3) with the
// given strategy: each member is answered independently and the answers
// are unioned with set semantics. RefJUCQ is not supported here (covers
// are per-CQ; use AnswerWithCover on the members).
func (e *Engine) AnswerUnion(u query.UCQ, s Strategy) (*Answer, error) {
	return e.AnswerUnionContext(context.Background(), u, s)
}

// AnswerUnionContext is AnswerUnion bounded by ctx; every member query is
// answered (and individually metered) under the same context.
func (e *Engine) AnswerUnionContext(ctx context.Context, u query.UCQ, s Strategy) (*Answer, error) {
	if len(u.CQs) == 0 {
		return nil, fmt.Errorf("engine: empty union")
	}
	if s == RefJUCQ {
		return nil, fmt.Errorf("engine: strategy %s needs per-member covers; answer the members individually", s)
	}
	combined := &Answer{Strategy: s, Rows: exec.NewRelation(u.HeadNames)}
	for _, cq := range u.CQs {
		ans, err := e.AnswerContext(ctx, cq, s)
		if err != nil {
			return nil, err
		}
		combined.ReformulationCQs += ans.ReformulationCQs
		combined.PrepTime += ans.PrepTime
		combined.EvalTime += ans.EvalTime
		combined.QueueWait += ans.QueueWait
		if ans.AdmissionWeight > combined.AdmissionWeight {
			combined.AdmissionWeight = ans.AdmissionWeight
		}
		for i := 0; i < ans.Rows.Len(); i++ {
			if ans.Rows.Width() == 0 {
				combined.Rows.AppendEmpty()
			} else {
				combined.Rows.Append(ans.Rows.Row(i))
			}
		}
	}
	combined.Rows.Distinct()
	return combined, nil
}
