package engine

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/viewcache"
)

// planCache memoizes GCov outcomes per query text (prepared-statement
// style): the cover search costs tens of milliseconds — paid once, not per
// execution. Keys are the exact formatted query (constants included);
// renamed variants miss, which only costs a fresh search. The cache is
// invalidated implicitly by being per-Engine: constraint changes require a
// new graph, hence a new engine.
// The cache is safe for concurrent use: engines sharing warmed caches
// (e.g. per-request shallow copies in the HTTP endpoint) share it too.
type planCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *planEntry
	byKey    map[string]*list.Element
}

type planEntry struct {
	key      string
	jucq     query.JUCQ
	cover    query.Cover
	cost     float64
	explored []core.Explored
	// fragKeys are the view-cache signatures of jucq's fragments, aligned
	// positionally. The plan — and its reformulated fragment UCQs — is
	// reused verbatim across executions, so the canonicalization behind
	// each signature (microseconds per member CQ, over hundreds of member
	// CQs) is paid once per plan instead of once per execution.
	fragKeys []string
}

// newPlanEntry builds a cache entry from a GCov outcome, precomputing the
// fragments' view-cache keys.
func newPlanEntry(key string, res *core.GCovResult) *planEntry {
	fragKeys := make([]string, len(res.JUCQ.Fragments))
	for i, f := range res.JUCQ.Fragments {
		fragKeys[i] = viewcache.Signature(f.UCQ)
	}
	return &planEntry{
		key: key, jucq: res.JUCQ, cover: res.Cover, cost: res.Cost,
		explored: res.Explored, fragKeys: fragKeys,
	}
}

// defaultPlanCacheSize bounds the number of cached covers per engine.
const defaultPlanCacheSize = 128

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{capacity: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

func (c *planCache) get(key string) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry), true
}

// put inserts or refreshes an entry and returns how many entries were
// evicted to make room (feeds the plan-cache eviction counter).
func (c *planCache) put(e *planEntry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return 0
	}
	c.byKey[e.key] = c.order.PushFront(e)
	evicted := 0
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*planEntry).key)
		evicted++
	}
	return evicted
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
