package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// All of these must be no-ops, not panics.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.SetFloat("k", 1.5)
	sp.SetBool("k", true)
	sp.End()
	if c := sp.Child("y"); c != nil {
		t.Fatal("nil span must hand out nil children")
	}
	if _, ok := sp.Attr("k"); ok {
		t.Fatal("nil span has no attrs")
	}
	sp.Visit(func(string, int, time.Duration, []Attr) { t.Fatal("nil span visits nothing") })
	if Render(sp, RenderOptions{}) != "" || ToJSON(sp) != nil {
		t.Fatal("nil span renders empty")
	}
	if tr.Root() != nil || tr.Dropped() != 0 || tr.SpanCount() != 0 {
		t.Fatal("nil tracer must report zero state")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := New(0)
	root := tr.StartSpan("query")
	root.SetStr("strategy", "ref-gcov")
	eval := root.Child("eval")
	scan := eval.Child("scan")
	scan.SetStr("atom", "x type Student")
	scan.SetFloat("est_rows", 120.5)
	scan.SetInt("rows", 118)
	scan.End()
	eval.SetInt("rows", 118)
	eval.End()
	root.End()

	if tr.SpanCount() != 3 {
		t.Fatalf("span count %d, want 3", tr.SpanCount())
	}
	a, ok := scan.Attr("est_rows")
	if !ok || !a.IsNumber() || a.Number() != 120.5 {
		t.Fatalf("est_rows attr = %+v ok=%v", a, ok)
	}
	if root.Duration() <= 0 || !strings.Contains(root.Name(), "query") {
		t.Fatalf("root not ended: dur=%v", root.Duration())
	}

	// Overwriting an attr must replace, not append.
	scan.SetInt("rows", 119)
	names := 0
	scan.Visit(func(_ string, _ int, _ time.Duration, attrs []Attr) {
		for _, a := range attrs {
			if a.Key == "rows" {
				names++
				if a.Number() != 119 {
					t.Fatalf("rows = %v, want 119", a.Number())
				}
			}
		}
	})
	if names != 1 {
		t.Fatalf("rows attr appears %d times, want 1", names)
	}
}

func TestRenderDeterministicWithoutTiming(t *testing.T) {
	tr := New(0)
	root := tr.StartSpan("select")
	root.SetStr("cover", "{1,3}{2}")
	f := root.Child("fragment")
	f.SetInt("idx", 0)
	f.Child("scan").SetFloat("est_rows", 42)
	root.Child("project").SetInt("cols", 2)

	got := Render(root, RenderOptions{})
	want := "select cover={1,3}{2}\n" +
		"├─ fragment idx=0\n" +
		"│  └─ scan est_rows=42\n" +
		"└─ project cols=2\n"
	if got != want {
		t.Fatalf("render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Rendering twice is identical (timing disabled).
	if again := Render(root, RenderOptions{}); again != got {
		t.Fatal("render not deterministic")
	}
}

func TestRenderQuotesSpacedStrings(t *testing.T) {
	tr := New(0)
	root := tr.StartSpan("scan")
	root.SetStr("atom", "x rdf:type ub:Student")
	got := Render(root, RenderOptions{})
	if !strings.Contains(got, `atom="x rdf:type ub:Student"`) {
		t.Fatalf("spaced attr not quoted: %q", got)
	}
}

func TestBoundedSpansDrop(t *testing.T) {
	tr := New(4)
	root := tr.StartSpan("root")
	var kept int
	for i := 0; i < 10; i++ {
		if root.Child("c") != nil {
			kept++
		}
	}
	if kept != 3 { // root + 3 children = 4
		t.Fatalf("kept %d children, want 3", kept)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", tr.Dropped())
	}
	// Children of dropped spans silently vanish too.
	var nilChild *Span
	if got := nilChild.Child("grandchild"); got != nil {
		t.Fatal("child of dropped span must be nil")
	}
}

func TestToJSONShape(t *testing.T) {
	tr := New(0)
	root := tr.StartSpan("query")
	root.SetStr("requestId", "abc")
	sc := root.Child("scan")
	sc.SetFloat("est_rows", 10)
	sc.SetInt("rows", 12)
	sc.End()
	root.End()

	j := ToJSON(root)
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" || back.Attrs["requestId"] != "abc" {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	scan := back.Find("scan")
	if scan == nil {
		t.Fatal("scan not found")
	}
	if scan.Attrs["est_rows"].(float64) != 10 || scan.Attrs["rows"].(float64) != 12 {
		t.Fatalf("scan attrs: %+v", scan.Attrs)
	}
	if got := back.AttrNames(); len(got) != 1 || got[0] != "requestId" {
		t.Fatalf("attr names: %v", got)
	}
}

func TestPhaseMillis(t *testing.T) {
	n := &SpanJSON{Name: "answer", Children: []*SpanJSON{
		{Name: "eval", DurMillis: 2},
		{Name: "fragment", Children: []*SpanJSON{{Name: "eval", DurMillis: 3}}},
	}}
	if got := n.PhaseMillis("eval"); got != 5 {
		t.Fatalf("PhaseMillis = %v, want 5", got)
	}
	if got := n.PhaseMillis("missing"); got != 0 {
		t.Fatalf("PhaseMillis(missing) = %v", got)
	}
}

// Concurrent children and attribute writes from many goroutines must be
// safe (run under -race) and never exceed the bound.
func TestConcurrentSpans(t *testing.T) {
	tr := New(256)
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := root.Child("cq")
				c.SetInt("rows", int64(i))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	if n := tr.SpanCount(); n > 256 {
		t.Fatalf("span count %d exceeds bound", n)
	}
	if tr.SpanCount()+int(tr.Dropped()) != 801 {
		t.Fatalf("kept %d + dropped %d != 801", tr.SpanCount(), tr.Dropped())
	}
	_ = Render(root, RenderOptions{Timing: true})
	_ = ToJSON(root)
}
