// Package trace is a dependency-free, allocation-light span tracer for
// one query's lifecycle: a bounded tree of named spans, each with a start
// time, a duration and a small set of typed attributes. The engine opens
// spans for parse/reformulate/plan/eval, the executor opens one span per
// operator (scan, join, union, projection) recording the cost model's
// estimated cardinality next to the actual row count — the raw material
// for EXPLAIN ANALYZE and for slow-query forensics.
//
// Every method tolerates a nil receiver: a nil *Tracer hands out nil
// *Spans whose methods are no-ops, so instrumented code never branches on
// "tracing enabled" and the disabled path costs one pointer test.
//
// A Tracer and its spans are safe for concurrent use (parallel UCQ
// branches record into the same tree); the span count is bounded, so a
// 300k-CQ reformulation cannot make a trace unbounded — excess spans are
// counted as dropped instead of recorded.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a tracer's span tree when no explicit bound is
// given: generous enough for every operator of a cover-based plan, small
// enough that a huge UCQ cannot balloon a request's memory.
const DefaultMaxSpans = 4096

type attrKind uint8

const (
	kindStr attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  float64
}

// IsNumber reports whether the attribute holds an int or float value.
func (a Attr) IsNumber() bool { return a.kind == kindInt || a.kind == kindFloat }

// Number returns the numeric value (0 for string attributes).
func (a Attr) Number() float64 { return a.num }

// Value returns the attribute value as a JSON-friendly any.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return int64(a.num)
	case kindFloat:
		return a.num
	case kindBool:
		return a.num != 0
	default:
		return a.str
	}
}

// String renders the value compactly (integers without a fraction, floats
// with a few significant digits).
func (a Attr) String() string {
	switch a.kind {
	case kindInt:
		return strconv.FormatInt(int64(a.num), 10)
	case kindFloat:
		return formatFloat(a.num)
	case kindBool:
		if a.num != 0 {
			return "true"
		}
		return "false"
	default:
		return a.str
	}
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', 4, 64)
}

// Span is one node of the trace tree. All methods are nil-tolerant and
// safe for concurrent use.
type Span struct {
	t        *Tracer
	id       uint64
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Tracer owns one bounded span tree.
type Tracer struct {
	mu      sync.Mutex
	root    *Span
	nextID  uint64
	count   int
	max     int
	dropped int64
}

// New returns a tracer bounding its tree to maxSpans spans
// (DefaultMaxSpans when maxSpans <= 0).
func New(maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{max: maxSpans}
}

// StartSpan opens a span: the tree's root if none exists yet, a child of
// the root otherwise. Returns nil on a nil tracer or when the span budget
// is exhausted.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		t.root = t.newSpanLocked(name)
		return t.root
	}
	return t.childLocked(t.root, name)
}

// Root returns the root span (nil until the first StartSpan).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Dropped returns how many spans were discarded because the tree was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanCount returns how many spans the tree currently holds.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

func (t *Tracer) newSpanLocked(name string) *Span {
	t.nextID++
	t.count++
	return &Span{t: t, id: t.nextID, name: name, start: time.Now()}
}

func (t *Tracer) childLocked(parent *Span, name string) *Span {
	if t.count >= t.max {
		t.dropped++
		return nil
	}
	s := t.newSpanLocked(name)
	parent.children = append(parent.children, s)
	return s
}

// Child opens a sub-span. Nil-tolerant: a nil span returns nil, so a
// dropped or disabled parent silently disables its whole subtree.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.t.childLocked(s, name)
}

// End records the span's duration (first call wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.dur
}

func (s *Span) setAttr(a Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// SetStr sets a string attribute.
func (s *Span) SetStr(key, v string) { s.setAttr(Attr{Key: key, kind: kindStr, str: v}) }

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.setAttr(Attr{Key: key, kind: kindInt, num: float64(v)}) }

// SetFloat sets a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.setAttr(Attr{Key: key, kind: kindFloat, num: v}) }

// SetBool sets a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	n := 0.0
	if v {
		n = 1
	}
	s.setAttr(Attr{Key: key, kind: kindBool, num: n})
}

// Attr returns the named attribute.
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Visit walks the subtree rooted at s in tree order, calling fn with each
// span's name, recorded duration and a copy of its attributes. The walk
// holds the tracer's lock: fn must not call back into the same tracer.
func (s *Span) Visit(fn func(name string, depth int, dur time.Duration, attrs []Attr)) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.visitLocked(0, fn)
}

func (s *Span) visitLocked(depth int, fn func(string, int, time.Duration, []Attr)) {
	fn(s.name, depth, s.dur, append([]Attr(nil), s.attrs...))
	for _, c := range s.children {
		c.visitLocked(depth+1, fn)
	}
}

// --- rendering ---------------------------------------------------------------

// RenderOptions controls the text rendering.
type RenderOptions struct {
	// Timing appends each span's wall-clock duration. Leave false for
	// deterministic output (EXPLAIN without ANALYZE, golden tests).
	Timing bool
}

// Render draws the subtree rooted at s as an indented tree, one span per
// line: name, key=value attributes and (with Timing) the duration.
func Render(s *Span, opts RenderOptions) string {
	if s == nil {
		return ""
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	var sb strings.Builder
	renderLocked(&sb, s, "", "", opts)
	return sb.String()
}

func renderLocked(sb *strings.Builder, s *Span, prefix, childPrefix string, opts RenderOptions) {
	sb.WriteString(prefix)
	sb.WriteString(s.name)
	for _, a := range s.attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		val := a.String()
		if a.kind == kindStr && strings.ContainsAny(val, " \t") {
			val = strconv.Quote(val)
		}
		sb.WriteString(val)
	}
	if opts.Timing && s.dur > 0 {
		fmt.Fprintf(sb, " (%s)", formatDur(s.dur))
	}
	sb.WriteByte('\n')
	for i, c := range s.children {
		if i == len(s.children)-1 {
			renderLocked(sb, c, childPrefix+"└─ ", childPrefix+"   ", opts)
		} else {
			renderLocked(sb, c, childPrefix+"├─ ", childPrefix+"│  ", opts)
		}
	}
}

func formatDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(time.Second))
	}
}

// --- JSON --------------------------------------------------------------------

// SpanJSON is the JSON shape of one span subtree.
type SpanJSON struct {
	Name      string         `json:"name"`
	DurMillis float64        `json:"durMillis,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Children  []*SpanJSON    `json:"children,omitempty"`
}

// ToJSON converts the subtree rooted at s into its JSON shape.
func ToJSON(s *Span) *SpanJSON {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return toJSONLocked(s)
}

func toJSONLocked(s *Span) *SpanJSON {
	out := &SpanJSON{
		Name:      s.name,
		DurMillis: round3(float64(s.dur) / float64(time.Millisecond)),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, toJSONLocked(c))
	}
	return out
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// Find returns the first span in n's subtree (depth-first, n included)
// whose name matches, or nil. It operates on the JSON shape so callers can
// inspect traces without holding tracer locks.
func (n *SpanJSON) Find(name string) *SpanJSON {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// PhaseMillis sums the durations of every span named name in n's subtree —
// the per-phase breakdown (reformulate / plan / eval) benchmark reports
// use.
func (n *SpanJSON) PhaseMillis(name string) float64 {
	if n == nil {
		return 0
	}
	total := 0.0
	if n.Name == name {
		total += n.DurMillis
	}
	for _, c := range n.Children {
		total += c.PhaseMillis(name)
	}
	return total
}

// AttrNames returns the sorted attribute keys (test helper).
func (n *SpanJSON) AttrNames() []string {
	if n == nil {
		return nil
	}
	out := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
