package viewcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/query"
)

func atomOf(s, p, o query.Arg) query.Atom { return query.Atom{S: s, P: p, O: o} }

// typeUCQ builds a single-CQ fragment UCQ  head(v) :- v <p> <cls>  with the
// given head variable name and constant IDs.
func typeUCQ(v string, p, cls dict.ID) query.UCQ {
	cq := query.NewCQ([]string{v}, []query.Atom{
		atomOf(query.Variable(v), query.Constant(p), query.Constant(cls)),
	})
	return query.UCQ{HeadNames: []string{v}, CQs: []query.CQ{cq}}
}

// rel builds a one-column relation with rows 0..n-1.
func rel(v string, n int) *exec.Relation {
	r := exec.NewRelation([]string{v})
	for i := 0; i < n; i++ {
		r.Append([]dict.ID{dict.ID(i + 1)})
	}
	return r
}

func evalN(counter *atomic.Int64, v string, n int) func() (*exec.Relation, error) {
	return func() (*exec.Relation, error) {
		counter.Add(1)
		return rel(v, n), nil
	}
}

// constCost is a fixed-cost admission estimator.
func constCost(c float64) func() float64 { return func() float64 { return c } }

func TestSignatureCanonicalization(t *testing.T) {
	a := typeUCQ("x", 10, 20)
	b := typeUCQ("z", 10, 20) // same fragment, renamed variable
	if Signature(a) != Signature(b) {
		t.Fatalf("signatures differ for alpha-equivalent fragments")
	}
	c := typeUCQ("x", 10, 21) // different class constant
	if Signature(a) == Signature(c) {
		t.Fatalf("signatures collide across different constants")
	}
	// CQ order within the UCQ must not matter.
	u1 := query.UCQ{HeadNames: []string{"x"}, CQs: []query.CQ{typeUCQ("x", 1, 2).CQs[0], typeUCQ("x", 1, 3).CQs[0]}}
	u2 := query.UCQ{HeadNames: []string{"x"}, CQs: []query.CQ{typeUCQ("x", 1, 3).CQs[0], typeUCQ("x", 1, 2).CQs[0]}}
	if Signature(u1) != Signature(u2) {
		t.Fatalf("signatures differ under CQ reordering")
	}
	if Signature(u1) == Signature(a) {
		t.Fatalf("signatures collide across different CQ sets")
	}
}

func TestHitReturnsRenamedImmutableView(t *testing.T) {
	c := New(Config{MinCost: -1})
	var evals atomic.Int64
	r1, out, err := c.GetOrEval(typeUCQ("x", 10, 20), "", constCost(1000), nil, evalN(&evals, "x", 3))
	if err != nil || out.Hit || !out.Stored {
		t.Fatalf("first call: out=%+v err=%v", out, err)
	}
	if r1.Len() != 3 {
		t.Fatalf("first result rows = %d", r1.Len())
	}
	// Same fragment spelled with a different head variable: must hit and
	// come back renamed.
	r2, out, err := c.GetOrEval(typeUCQ("z", 10, 20), "", constCost(1000), nil, evalN(&evals, "z", 3))
	if err != nil || !out.Hit {
		t.Fatalf("second call: out=%+v err=%v", out, err)
	}
	if len(r2.Vars) != 1 || r2.Vars[0] != "z" {
		t.Fatalf("hit vars = %v, want [z]", r2.Vars)
	}
	if evals.Load() != 1 {
		t.Fatalf("evals = %d, want 1", evals.Load())
	}
	// Mutating the returned view must not reach the cached copy.
	r2.Append([]dict.ID{99})
	r3, out, err := c.GetOrEval(typeUCQ("y", 10, 20), "", constCost(1000), nil, evalN(&evals, "y", 3))
	if err != nil || !out.Hit {
		t.Fatalf("third call: out=%+v err=%v", out, err)
	}
	if r3.Len() != 3 {
		t.Fatalf("cached copy corrupted: rows = %d, want 3", r3.Len())
	}
}

func TestCostAdmissionBypass(t *testing.T) {
	m := metrics.NewRegistry()
	c := New(Config{MinCost: 100, Metrics: m})
	var evals atomic.Int64
	for i := 0; i < 2; i++ {
		_, out, err := c.GetOrEval(typeUCQ("x", 10, 20), "", constCost(5), nil, evalN(&evals, "x", 3))
		if err != nil {
			t.Fatal(err)
		}
		if out.Hit || out.Shared || out.Stored {
			t.Fatalf("cheap fragment interacted with cache: %+v", out)
		}
	}
	if evals.Load() != 2 || c.Len() != 0 {
		t.Fatalf("evals=%d len=%d, want 2 evals and empty cache", evals.Load(), c.Len())
	}
	if m.Counter("viewcache.bypass").Value() != 2 {
		t.Fatalf("bypass counter = %d", m.Counter("viewcache.bypass").Value())
	}
	// Unknown cost (negative) is admitted.
	_, out, err := c.GetOrEval(typeUCQ("x", 10, 20), "", constCost(-1), nil, evalN(&evals, "x", 3))
	if err != nil || !out.Stored {
		t.Fatalf("unknown-cost fragment not admitted: %+v err=%v", out, err)
	}
}

// TestHitSkipsCostEstimation pins the lazy-admission contract: estimating a
// large reformulation costs real time, so the estimator must run on the
// first miss only — never on a hit.
func TestHitSkipsCostEstimation(t *testing.T) {
	c := New(Config{MinCost: 1})
	var evals, estimates atomic.Int64
	counting := func() float64 { estimates.Add(1); return 1000 }
	u := typeUCQ("x", 10, 20)
	if _, out, err := c.GetOrEval(u, "", counting, nil, evalN(&evals, "x", 3)); err != nil || !out.Stored {
		t.Fatalf("miss not stored: %+v err=%v", out, err)
	}
	if estimates.Load() != 1 {
		t.Fatalf("miss ran estimator %d times, want 1", estimates.Load())
	}
	for i := 0; i < 3; i++ {
		if _, out, err := c.GetOrEval(u, "", counting, nil, evalN(&evals, "x", 3)); err != nil || !out.Hit {
			t.Fatalf("expected hit: %+v err=%v", out, err)
		}
	}
	if estimates.Load() != 1 {
		t.Fatalf("hits ran the estimator (%d calls total, want 1)", estimates.Load())
	}
	// A nil estimator means unknown cost and is admitted, not dereferenced.
	if _, out, err := c.GetOrEval(typeUCQ("x", 10, 21), "", nil, nil, evalN(&evals, "x", 3)); err != nil || !out.Stored {
		t.Fatalf("nil-estimator fragment not admitted: %+v err=%v", out, err)
	}
}

// TestPrecomputedKey pins the key fast path: a caller holding a reused plan
// passes Signature(u) precomputed, and lookups keyed either way land on the
// same entry; malformed keys fall back to deriving the signature.
func TestPrecomputedKey(t *testing.T) {
	c := New(Config{MinCost: -1})
	var evals atomic.Int64
	u := typeUCQ("x", 10, 20)
	sig := Signature(u)
	if _, out, err := c.GetOrEval(u, sig, constCost(1000), nil, evalN(&evals, "x", 3)); err != nil || !out.Stored {
		t.Fatalf("keyed miss not stored: %+v err=%v", out, err)
	}
	// Derived-key lookup of the same fragment must hit the keyed entry.
	if _, out, err := c.GetOrEval(u, "", constCost(1000), nil, evalN(&evals, "x", 3)); err != nil || !out.Hit {
		t.Fatalf("derived-key lookup missed keyed entry: %+v err=%v", out, err)
	}
	// Keyed lookup of an alpha-renamed spelling must hit too.
	if r, out, err := c.GetOrEval(typeUCQ("z", 10, 20), sig, constCost(1000), nil, evalN(&evals, "z", 3)); err != nil || !out.Hit || r.Vars[0] != "z" {
		t.Fatalf("keyed renamed lookup: %+v err=%v", out, err)
	}
	// A malformed (non-signature-length) key is ignored, not trusted.
	if _, out, err := c.GetOrEval(u, "bogus", constCost(1000), nil, evalN(&evals, "x", 3)); err != nil || !out.Hit {
		t.Fatalf("malformed key not rederived: %+v err=%v", out, err)
	}
	if evals.Load() != 1 {
		t.Fatalf("evals = %d, want 1", evals.Load())
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	m := metrics.NewRegistry()
	c := New(Config{Shards: 1, MaxBytes: 1 << 20, MaxEntryBytes: 100, MinCost: -1, Metrics: m})
	var evals atomic.Int64
	// 100 rows × 4 bytes ≫ 100-byte cap.
	_, out, err := c.GetOrEval(typeUCQ("x", 10, 20), "", constCost(1000), nil, evalN(&evals, "x", 100))
	if err != nil || out.Stored {
		t.Fatalf("oversized entry admitted: %+v err=%v", out, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("len=%d bytes=%d after rejection", c.Len(), c.Bytes())
	}
	if m.Counter("viewcache.reject").Value() != 1 {
		t.Fatalf("reject counter = %d", m.Counter("viewcache.reject").Value())
	}
}

func TestLRUEviction(t *testing.T) {
	m := metrics.NewRegistry()
	// One shard, room for roughly three 10-row entries (121 bytes each).
	c := New(Config{Shards: 1, MaxBytes: 400, MaxEntryBytes: 200, MinCost: -1, Metrics: m})
	var evals atomic.Int64
	for i := 0; i < 4; i++ {
		_, out, err := c.GetOrEval(typeUCQ("x", 10, dict.ID(100+i)), "", constCost(1000), nil, evalN(&evals, "x", 10))
		if err != nil || !out.Stored {
			t.Fatalf("entry %d not stored: %+v err=%v", i, out, err)
		}
	}
	if m.Counter("viewcache.evict").Value() == 0 {
		t.Fatalf("no evictions under budget pressure")
	}
	if c.Bytes() > 400 {
		t.Fatalf("resident bytes %d exceed budget", c.Bytes())
	}
	// The least recently used fragment (i=0) must be gone: re-requesting it
	// evaluates again; the most recent (i=3) must still hit.
	before := evals.Load()
	_, out, _ := c.GetOrEval(typeUCQ("x", 10, 103), "", constCost(1000), nil, evalN(&evals, "x", 10))
	if !out.Hit {
		t.Fatalf("most recent entry evicted: %+v", out)
	}
	_, out, _ = c.GetOrEval(typeUCQ("x", 10, 100), "", constCost(1000), nil, evalN(&evals, "x", 10))
	if out.Hit {
		t.Fatalf("least recent entry survived eviction")
	}
	if evals.Load() != before+1 {
		t.Fatalf("evals = %d, want %d", evals.Load(), before+1)
	}
	if m.Gauge("viewcache.bytes").Value() != c.Bytes() || m.Gauge("viewcache.entries").Value() != int64(c.Len()) {
		t.Fatalf("gauges out of sync with cache state")
	}
}

func TestInvalidateDropsEntriesAndBumpsGeneration(t *testing.T) {
	c := New(Config{MinCost: -1})
	var evals atomic.Int64
	u := typeUCQ("x", 10, 20)
	if _, out, _ := c.GetOrEval(u, "", constCost(1000), nil, evalN(&evals, "x", 3)); !out.Stored {
		t.Fatalf("not stored: %+v", out)
	}
	g := c.Generation()
	c.Invalidate()
	if c.Generation() != g+1 {
		t.Fatalf("generation %d, want %d", c.Generation(), g+1)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("entries survived Invalidate: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if _, out, _ := c.GetOrEval(u, "", constCost(1000), nil, evalN(&evals, "x", 3)); out.Hit {
		t.Fatalf("hit after Invalidate")
	}
	if evals.Load() != 2 {
		t.Fatalf("evals = %d, want 2", evals.Load())
	}
}

func TestMidFlightInvalidationNotStored(t *testing.T) {
	c := New(Config{MinCost: -1})
	u := typeUCQ("x", 10, 20)
	// The update lands while the evaluation is in progress: the result
	// describes the pre-update database and must not be admitted.
	_, out, err := c.GetOrEval(u, "", constCost(1000), nil, func() (*exec.Relation, error) {
		c.Invalidate()
		return rel("x", 3), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stored {
		t.Fatalf("stale result admitted: %+v", out)
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry resident after mid-flight invalidation")
	}
}

func TestSingleflightExactlyOneEval(t *testing.T) {
	m := metrics.NewRegistry()
	c := New(Config{MinCost: -1, Metrics: m})
	u := typeUCQ("x", 10, 20)
	const n = 8
	var evals atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*exec.Relation, n)
	outcomes := make([]exec.CacheOutcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, out, err := c.GetOrEval(u, "", constCost(1000), nil, func() (*exec.Relation, error) {
				evals.Add(1)
				close(started)
				<-release
				return rel("x", 5), nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i], outcomes[i] = r, out
		}(i)
	}
	<-started
	// Give the other goroutines a moment to join the flight, then let the
	// leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if evals.Load() != 1 {
		t.Fatalf("evals = %d, want exactly 1", evals.Load())
	}
	want := rel("x", 5)
	for i, r := range results {
		if r == nil || !r.Equal(want) {
			t.Fatalf("goroutine %d got wrong relation", i)
		}
	}
	shared := 0
	for _, out := range outcomes {
		if out.Shared {
			shared++
		}
	}
	if got := m.Counter("viewcache.singleflight_shared").Value(); got != int64(shared) || shared == 0 {
		t.Fatalf("singleflight_shared counter=%d, outcomes=%d", got, shared)
	}
}

func TestWaiterUnblocksOnStopError(t *testing.T) {
	c := New(Config{MinCost: -1})
	u := typeUCQ("x", 10, 20)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrEval(u, "", constCost(1000), nil, func() (*exec.Relation, error) {
			close(started)
			<-release
			return rel("x", 3), nil
		})
	}()
	<-started
	stopErr := errors.New("caller canceled")
	var stopped atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrEval(u, "", constCost(1000), func() error {
			if stopped.Load() {
				return stopErr
			}
			return nil
		}, func() (*exec.Relation, error) { return rel("x", 3), nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	stopped.Store(true)
	select {
	case err := <-done:
		if !errors.Is(err, stopErr) {
			t.Fatalf("waiter returned %v, want stop error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("waiter did not unblock on stop error")
	}
	close(release)
}

func TestLeaderErrorWaiterFallsBack(t *testing.T) {
	c := New(Config{MinCost: -1})
	u := typeUCQ("x", 10, 20)
	release := make(chan struct{})
	started := make(chan struct{})
	boom := errors.New("leader budget exceeded")
	go func() {
		_, _, _ = c.GetOrEval(u, "", constCost(1000), nil, func() (*exec.Relation, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	done := make(chan struct{})
	var got *exec.Relation
	go func() {
		defer close(done)
		r, _, err := c.GetOrEval(u, "", constCost(1000), nil, func() (*exec.Relation, error) {
			return rel("x", 3), nil
		})
		if err != nil {
			t.Errorf("waiter fallback failed: %v", err)
			return
		}
		got = r
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("waiter did not fall back after leader error")
	}
	if got == nil || got.Len() != 3 {
		t.Fatalf("waiter fallback result wrong: %v", got)
	}
}

func TestConcurrentMixedWorkloadRace(t *testing.T) {
	c := New(Config{Shards: 4, MaxBytes: 1 << 16, MinCost: -1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := typeUCQ("x", 10, dict.ID(100+i%16))
				if g == 0 && i%25 == 0 {
					c.Invalidate()
					continue
				}
				r, _, err := c.GetOrEval(u, "", constCost(1000), nil, func() (*exec.Relation, error) {
					return rel("x", i%7+1), nil
				})
				if err != nil {
					t.Errorf("GetOrEval: %v", err)
					return
				}
				_ = r.Len()
			}
		}(g)
	}
	wg.Wait()
}

func TestSignatureDistributesAcrossShards(t *testing.T) {
	c := New(Config{Shards: 8, MinCost: -1})
	hit := map[*shard]bool{}
	for i := 0; i < 64; i++ {
		hit[c.shard(Signature(typeUCQ("x", 10, dict.ID(i))))] = true
	}
	if len(hit) < 4 {
		t.Fatalf("signatures landed on only %d/8 shards", len(hit))
	}
}

func TestMetricsCounters(t *testing.T) {
	m := metrics.NewRegistry()
	c := New(Config{MinCost: -1, Metrics: m})
	u := typeUCQ("x", 10, 20)
	var evals atomic.Int64
	for i := 0; i < 3; i++ {
		if _, _, err := c.GetOrEval(u, "", constCost(1000), nil, evalN(&evals, "x", 2)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Counter("viewcache.miss").Value() != 1 {
		t.Fatalf("miss = %d, want 1", m.Counter("viewcache.miss").Value())
	}
	if m.Counter("viewcache.hit").Value() != 2 {
		t.Fatalf("hit = %d, want 2", m.Counter("viewcache.hit").Value())
	}
	if m.Gauge("viewcache.entries").Value() != 1 {
		t.Fatalf("entries gauge = %d", m.Gauge("viewcache.entries").Value())
	}
	if fmt.Sprintf("%d", m.Gauge("viewcache.bytes").Value()) == "0" {
		t.Fatalf("bytes gauge is zero with a resident entry")
	}
}
