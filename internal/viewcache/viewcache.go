// Package viewcache materializes fragment-level query results for reuse
// across queries — the serving-stack analog of a KV cache, after Goasdoué
// et al.'s observation that reformulation-closed sub-results are the right
// unit of materialization. The reformulation strategies re-derive the same
// fragment UCQs over and over (the atomic reformulations of one triple
// pattern recur in many covers), so a serving deployment that caches
// fragment results answers repeated workloads mostly from memory.
//
// The cache is a sharded, byte-budgeted LRU keyed by a canonicalized,
// dictionary-encoded fragment signature (Signature): two fragments equal up
// to variable renaming and CQ/atom reordering share one entry, and a hit
// is returned as a defensively immutable, positionally renamed view.
//
// Admission is cost-based: only fragments whose estimated evaluation cost
// clears Config.MinCost are cached (cheap fragments are faster to recompute
// than to manage), and only results within Config.MaxEntryBytes are
// admitted. Concurrent identical misses collapse into one evaluation
// (singleflight), so a cold popular fragment evaluates once under load.
//
// Updates invalidate through a generation stamp: engine.InsertData /
// DeleteData bump the generation and drop every entry, and both entries
// and in-flight evaluations carry the generation they were computed under,
// so a lookup that starts after an update completes can never observe a
// pre-update result (per Ahmeti et al., update-time invalidation is a
// first-class concern, not a cache-drop afterthought).
package viewcache

import (
	"container/list"
	"crypto/sha256"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Defaults for Config zero values.
const (
	// DefaultMaxBytes is the default total byte budget (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultShards is the default shard count.
	DefaultShards = 16
	// DefaultMinCost is the default admission threshold on the cost
	// model's estimated fragment evaluation cost.
	DefaultMinCost = 64.0
)

// pollInterval is how often a singleflight waiter polls its stop function
// while blocked on the leader's evaluation.
const pollInterval = 2 * time.Millisecond

// Config parameterizes a Cache. Zero values take the defaults above.
type Config struct {
	// MaxBytes is the total byte budget across all shards.
	MaxBytes int64
	// MaxEntryBytes caps one entry (default: half a shard's budget; always
	// clamped to the shard budget so a single entry cannot evict a whole
	// shard and still not fit).
	MaxEntryBytes int64
	// MinCost is the admission threshold: fragments whose estimated
	// evaluation cost is below it bypass the cache entirely (0 = default;
	// negative = admit regardless of cost).
	MinCost float64
	// Shards is the number of independently locked LRU shards.
	Shards int
	// Metrics, when non-nil, receives viewcache.hit / viewcache.miss /
	// viewcache.evict / viewcache.bypass / viewcache.reject /
	// viewcache.singleflight_shared counters and the viewcache.bytes /
	// viewcache.entries gauges.
	Metrics *metrics.Registry
}

// Cache is a sharded, byte-budgeted, generation-stamped LRU of fragment
// results. Safe for concurrent use.
type Cache struct {
	shards      []*shard
	shardBudget int64
	maxEntry    int64
	minCost     float64
	m           *metrics.Registry

	gen     atomic.Uint64
	bytes   atomic.Int64
	entries atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	bytes   int64      // resident bytes in this shard; guarded by mu
	order   *list.List // front = most recent; values are *entry
	byKey   map[string]*list.Element
	flights map[string]*flight
}

type entry struct {
	key   string
	rel   *exec.Relation // immutable snapshot (exact-capacity backing array)
	bytes int64
	gen   uint64
}

// flight is one in-progress evaluation waiters can share. rel/err are
// written before done is closed and read only after it is closed.
type flight struct {
	done  chan struct{}
	rel   *exec.Relation
	bytes int64
	err   error
	gen   uint64
}

// New returns a cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	c := &Cache{
		shards:      make([]*shard, cfg.Shards),
		shardBudget: cfg.MaxBytes / int64(cfg.Shards),
		minCost:     cfg.MinCost,
		m:           cfg.Metrics,
	}
	if c.shardBudget < 1 {
		c.shardBudget = 1
	}
	if c.minCost == 0 {
		c.minCost = DefaultMinCost
	}
	c.maxEntry = cfg.MaxEntryBytes
	if c.maxEntry <= 0 {
		c.maxEntry = c.shardBudget / 2
	}
	if c.maxEntry > c.shardBudget {
		c.maxEntry = c.shardBudget
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			order:   list.New(),
			byKey:   map[string]*list.Element{},
			flights: map[string]*flight{},
		}
	}
	return c
}

// Signature canonicalizes a fragment UCQ into its cache key: the sorted
// set of member-CQ canonical keys (variables renamed in first-occurrence
// order, atoms reordered canonically, constants rendered as dictionary
// IDs) plus the head arity, hashed. Fragments equal up to variable
// renaming and CQ/atom order — even when produced by different queries or
// covers — share one signature; the head columns correspond positionally.
func Signature(u query.UCQ) string {
	keys := make([]string, len(u.CQs))
	for i, cq := range u.CQs {
		keys[i] = cq.CanonicalKey()
	}
	sort.Strings(keys)
	h := sha256.New()
	var arity [2]byte
	arity[0] = byte(len(u.HeadNames))
	arity[1] = byte(len(u.HeadNames) >> 8)
	h.Write(arity[:])
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return string(h.Sum(nil))
}

// Generation returns the current update generation.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Bytes returns the cached result bytes currently resident.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Invalidate bumps the generation stamp and drops every entry. Called by
// the engine after InsertData/DeleteData. The generation is bumped before
// the shards are cleared, and every lookup re-reads it under the shard
// lock, so once Invalidate returns no pre-update entry — resident or
// mid-store — can ever be served again. In-flight evaluations that began
// before the bump complete for their own (concurrent, hence linearizable)
// waiters but are not admitted to the cache.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			ent := el.Value.(*entry)
			c.bytes.Add(-ent.bytes)
			c.entries.Add(-1)
		}
		sh.bytes = 0
		sh.order.Init()
		sh.byKey = map[string]*list.Element{}
		sh.mu.Unlock()
	}
	c.gauges()
}

func (c *Cache) shard(key string) *shard {
	// The key is already a cryptographic hash; its first bytes index the
	// shard uniformly.
	n := uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24
	return c.shards[n%uint32(len(c.shards))]
}

// count increments one outcome counter.
//
//reflint:metricname forwarding helper; every caller passes a "viewcache."-prefixed literal covered by the bridge's label rule
func (c *Cache) count(name string) {
	c.m.Counter(name).Inc()
}

func (c *Cache) gauges() {
	if c.m == nil {
		return
	}
	c.m.Gauge("viewcache.bytes").Set(c.bytes.Load())
	c.m.Gauge("viewcache.entries").Set(c.entries.Load())
}

// GetOrEval implements exec.FragmentCache: it returns u's result from the
// cache when resident, joins an identical in-flight evaluation when one
// exists, and otherwise runs eval and admits the result (cost and size
// permitting). stop is polled while waiting on another flight so a
// canceled or timed-out caller unblocks promptly.
//
// key, when non-empty, must be Signature(u) precomputed by the caller —
// plans are reused verbatim across executions, so a caller holding one can
// canonicalize each fragment once per plan instead of once per execution.
// estCost is consulted lazily, on the first miss only: estimating a large
// reformulation costs real time, and a hit must never pay it.
func (c *Cache) GetOrEval(u query.UCQ, key string, estCost func() float64, stop func() error,
	eval func() (*exec.Relation, error)) (*exec.Relation, exec.CacheOutcome, error) {
	if len(key) != sha256.Size {
		// Absent (or malformed) precomputed key: derive it here.
		key = Signature(u)
	}
	sh := c.shard(key)
	admissionChecked := false
	for {
		sh.mu.Lock()
		gen := c.gen.Load()
		if el, ok := sh.byKey[key]; ok {
			ent := el.Value.(*entry)
			if ent.gen == gen {
				sh.order.MoveToFront(el)
				sh.mu.Unlock()
				view, err := ent.rel.RenamedView(u.HeadNames)
				if err == nil {
					c.count("viewcache.hit")
					return view, exec.CacheOutcome{Hit: true, Bytes: ent.bytes}, nil
				}
				// Arity mismatch cannot happen for equal signatures; fall
				// through to a fresh evaluation defensively.
				sh.mu.Lock()
			}
			c.removeLocked(sh, el)
		}
		if f, ok := sh.flights[key]; ok && f.gen == gen {
			sh.mu.Unlock()
			if err := c.wait(f, stop); err != nil {
				return nil, exec.CacheOutcome{}, err
			}
			if f.err == nil && f.rel != nil {
				if view, err := f.rel.RenamedView(u.HeadNames); err == nil {
					c.count("viewcache.miss")
					c.count("viewcache.singleflight_shared")
					return view, exec.CacheOutcome{Shared: true, Bytes: f.bytes}, nil
				}
			}
			// The leader failed (its budget, its cancellation — not
			// necessarily ours): evaluate independently.
			continue
		}
		if !admissionChecked {
			// First miss: decide (outside the shard lock — the estimate can
			// be expensive) whether this fragment is worth caching at all.
			sh.mu.Unlock()
			admissionChecked = true
			est := -1.0 // nil estimator = unknown cost = admit
			if estCost != nil {
				est = estCost()
			}
			if est >= 0 && c.minCost >= 0 && est < c.minCost {
				// Too cheap to be worth caching: evaluating is faster than
				// the bookkeeping, and budget is better spent on expensive
				// fragments.
				c.count("viewcache.bypass")
				rel, err := eval()
				return rel, exec.CacheOutcome{}, err
			}
			// Worth caching; re-take the lock and re-check — an entry or
			// flight may have appeared while we estimated.
			continue
		}
		f := &flight{done: make(chan struct{}), gen: gen}
		sh.flights[key] = f
		sh.mu.Unlock()
		c.count("viewcache.miss")
		return c.lead(sh, key, f, u, eval)
	}
}

// lead runs the evaluation as the flight leader, admits the result, and
// releases waiters.
func (c *Cache) lead(sh *shard, key string, f *flight, u query.UCQ,
	eval func() (*exec.Relation, error)) (*exec.Relation, exec.CacheOutcome, error) {
	rel, err := eval()
	var out exec.CacheOutcome
	if err == nil {
		snap := rel.Snapshot()
		f.rel, f.bytes = snap, snap.SizeBytes()
		out.Stored = c.store(sh, key, snap, f.bytes, f.gen)
		if out.Stored {
			out.Bytes = f.bytes
		}
	}
	f.err = err
	sh.mu.Lock()
	if sh.flights[key] == f {
		delete(sh.flights, key)
	}
	sh.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, exec.CacheOutcome{}, err
	}
	// The leader keeps the relation it evaluated; the cache holds its own
	// snapshot, so downstream mutation cannot reach the cached copy.
	return rel, out, nil
}

// store admits one snapshot, evicting least-recently-used entries to make
// room; it refuses oversized entries and anything computed under a stale
// generation. Returns whether the entry was admitted.
func (c *Cache) store(sh *shard, key string, snap *exec.Relation, bytes int64, gen uint64) bool {
	if bytes > c.maxEntry {
		c.count("viewcache.reject")
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.gen.Load() != gen {
		// An update completed while we evaluated: the result describes the
		// pre-update database and must not outlive it.
		return false
	}
	if el, ok := sh.byKey[key]; ok {
		// A concurrent leader (possible after a flight was replaced) beat
		// us to it; keep the resident entry and its LRU position.
		sh.order.MoveToFront(el)
		return false
	}
	evicted := 0
	for sh.bytes+bytes > c.shardBudget && sh.order.Len() > 0 {
		c.removeLocked(sh, sh.order.Back())
		evicted++
	}
	if evicted > 0 {
		c.m.Counter("viewcache.evict").Add(int64(evicted))
	}
	ent := &entry{key: key, rel: snap, bytes: bytes, gen: gen}
	sh.byKey[key] = sh.order.PushFront(ent)
	sh.bytes += bytes
	c.bytes.Add(bytes)
	c.entries.Add(1)
	c.gauges()
	return true
}

// removeLocked drops one entry; the shard lock must be held.
func (c *Cache) removeLocked(sh *shard, el *list.Element) {
	ent := el.Value.(*entry)
	sh.order.Remove(el)
	delete(sh.byKey, ent.key)
	sh.bytes -= ent.bytes
	c.bytes.Add(-ent.bytes)
	c.entries.Add(-1)
	c.gauges()
}

// wait blocks until the flight completes, polling stop so a canceled or
// over-budget waiter abandons the wait with the caller's own error.
func (c *Cache) wait(f *flight, stop func() error) error {
	if stop == nil {
		<-f.done
		return nil
	}
	if err := stop(); err != nil {
		return err
	}
	t := time.NewTicker(pollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.done:
			return nil
		case <-t.C:
			if err := stop(); err != nil {
				return err
			}
		}
	}
}
