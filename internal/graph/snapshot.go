package graph

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dict"
	"repro/internal/durable/columnar"
	"repro/internal/rdf"
	"repro/internal/schema"
)

// snapshotMagicV1 versions the original gob-encoded snapshot format.
// WriteSnapshot now emits the v2 columnar format (see
// internal/durable/columnar); v1 files remain readable.
const snapshotMagicV1 = "repro-rdf-snapshot-v1\n"

// snapshot is the v1 gob payload: the dictionary's term table (IDs are the
// 1-based positions) plus encoded data and closed-schema triples. Reloads
// rebuild the same IDs, so stores and statistics computed after a reload
// match the original exactly. Classes and Properties record the declared
// class/property sets — the closed constraint triples alone lose
// constraint-free declarations, and the interval re-encoding needs the full
// sets to reproduce the same DFS layout (gob tolerates the fields being
// absent in pre-interval snapshots).
type snapshot struct {
	Terms      []rdf.Term
	Data       []dict.Triple
	Schema     []dict.Triple
	Classes    []dict.ID
	Properties []dict.ID
}

// WriteSnapshot serializes the graph (dictionary, data, closed schema) in
// the v2 columnar format: delta-encoded sorted ID-triple columns plus the
// term table, flate-compressed and CRC32C-checksummed per section.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	snap := &columnar.Snapshot{
		Data:       g.data,
		Schema:     g.schema.Triples(),
		Classes:    g.schema.Classes(),
		Properties: g.schema.Properties(),
	}
	snap.Terms = make([]rdf.Term, g.d.Len())
	for i := range snap.Terms {
		snap.Terms[i] = g.d.Decode(dict.ID(i + 1))
	}
	if err := columnar.Write(w, snap); err != nil {
		return fmt.Errorf("graph: snapshot encode: %w", err)
	}
	return nil
}

// SaveSnapshot writes the snapshot to a file, atomically and crash-durably:
// the payload goes to a uniquely named temp file in the target directory
// (so concurrent saves never clobber each other mid-write), is fsynced
// before the rename, and the directory entry is fsynced after it. A crash
// at any point leaves either the old snapshot or the new one, never a
// partial file at path.
func (g *Graph) SaveSnapshot(path string) error {
	return saveAtomic(path, g.WriteSnapshot)
}

// saveAtomic runs write against a temp file in path's directory, fsyncs,
// renames over path and fsyncs the directory entry — the shared
// crash-durability discipline of every snapshot file.
func saveAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// ReadSnapshot reconstructs a graph from a snapshot stream, sniffing the
// format by magic: v2 columnar snapshots (the current write format) load
// their sections with per-column parallelism; v1 gob snapshots stay
// readable. The rebuilt dictionary assigns the identical IDs, and
// re-closing the (already closed) schema is idempotent, so the result is
// indistinguishable from the original. Short reads are hard errors in
// both formats: a truncated snapshot never loads as a smaller graph.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(len(snapshotMagicV1))
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("graph: snapshot header: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("graph: snapshot header: %w", err)
	}
	switch string(magic) {
	case columnar.Magic:
		snap, err := columnar.Read(br)
		if err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		return buildFromSnapshot(snap.Terms, snap.Data, snap.Schema, snap.Classes, snap.Properties)
	case snapshotMagicV1:
		return readSnapshotV1(br)
	default:
		return nil, fmt.Errorf("graph: not a snapshot (bad magic %q)", string(magic))
	}
}

// readSnapshotV1 decodes the legacy gob payload. The decoder is strict
// about truncation: gob frames are length-prefixed, so a short read inside
// a message surfaces as unexpected EOF, and a stream that ends cleanly
// before the value message is still an error (io.EOF from Decode).
func readSnapshotV1(br *bufio.Reader) (*Graph, error) {
	if _, err := br.Discard(len(snapshotMagicV1)); err != nil {
		return nil, fmt.Errorf("graph: snapshot header: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		if errors.Is(err, io.EOF) {
			// Decode returns a bare io.EOF when the stream ends cleanly
			// before the value arrives — for a snapshot file that is a
			// truncated payload, not a graceful end.
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("graph: snapshot decode: %w", err)
	}
	return buildFromSnapshot(snap.Terms, snap.Data, snap.Schema, snap.Classes, snap.Properties)
}

// buildFromSnapshot validates decoded snapshot components and assembles
// the graph; shared by the v1 and v2 readers.
func buildFromSnapshot(terms []rdf.Term, data, schemaTriples []dict.Triple, classes, properties []dict.ID) (*Graph, error) {
	d := dict.New()
	for i, term := range terms {
		if !term.Valid() {
			return nil, fmt.Errorf("graph: snapshot term %d invalid: %#v", i+1, term)
		}
		if id := d.Encode(term); id != dict.ID(i+1) {
			return nil, fmt.Errorf("graph: snapshot term table has duplicates (term %d)", i+1)
		}
	}
	n := dict.ID(len(terms))
	checkTriple := func(t dict.Triple, what string) error {
		if t.S == dict.None || t.P == dict.None || t.O == dict.None ||
			t.S > n || t.P > n || t.O > n {
			return fmt.Errorf("graph: snapshot %s triple references unknown id: %+v", what, t)
		}
		return nil
	}
	b := schema.NewBuilder(d)
	for _, id := range classes {
		if id == dict.None || id > n {
			return nil, fmt.Errorf("graph: snapshot class id %d unknown", id)
		}
		b.DeclareClass(d.Decode(id))
	}
	for _, id := range properties {
		if id == dict.None || id > n {
			return nil, fmt.Errorf("graph: snapshot property id %d unknown", id)
		}
		b.DeclareProperty(d.Decode(id))
	}
	for _, t := range schemaTriples {
		if err := checkTriple(t, "schema"); err != nil {
			return nil, err
		}
		decoded := d.DecodeTriple(t)
		if !b.AddTriple(decoded) {
			return nil, fmt.Errorf("graph: snapshot schema triple is not a constraint: %s", decoded)
		}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	for _, t := range data {
		if err := checkTriple(t, "data"); err != nil {
			return nil, err
		}
	}
	g := &Graph{d: d, schema: b.Close(), data: sortDedup(data)}
	// Snapshots written after the interval encoding are already in DFS
	// order, so this is the identity; older snapshots get re-encoded here.
	g.Reencode()
	return g, nil
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
