package graph

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dict"
)

// shardedSave saves g in the sharded layout into dir with n shards using
// a simple modulo partition, returning the base and shard paths.
func shardedSave(t *testing.T, g *Graph, dir string, n int) (string, []string) {
	t.Helper()
	names := make([]string, n)
	paths := make([]string, n)
	for i := range names {
		names[i] = filepath.Base(dir) + "-shard" + string(rune('a'+i)) + ".col"
		paths[i] = filepath.Join(dir, names[i])
	}
	if err := g.SaveShardedSnapshot(dir, "base.col", names, func(s dict.ID) int {
		return int(s) % n
	}); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "base.col"), paths
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 7} {
		base, shards := shardedSave(t, g, t.TempDir(), n)
		back, err := LoadShardedSnapshot(base, shards)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a, b := g.AllTriples(), back.AllTriples()
		if len(a) != len(b) {
			t.Fatalf("n=%d: triple counts differ: %d vs %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: triple %d: %v != %v", n, i, a[i], b[i])
			}
		}
		if g.Schema().String() != back.Schema().String() {
			t.Fatalf("n=%d: schema differs", n)
		}
	}
}

// TestShardedSnapshotShardOrderIrrelevant: the assembly pass re-sorts, so
// loading the shard files in any order rebuilds the identical graph.
func TestShardedSnapshotShardOrderIrrelevant(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	base, shards := shardedSave(t, g, t.TempDir(), 3)
	reversed := []string{shards[2], shards[1], shards[0]}
	back, err := LoadShardedSnapshot(base, reversed)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.AllTriples(), back.AllTriples()
	if len(a) != len(b) {
		t.Fatalf("triple counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestShardedSnapshotRejectsRoleMixups: a monolithic snapshot in the base
// slot (it carries data) and a base file in a shard slot (it carries
// terms) must both be rejected — they mean the manifest pointed at the
// wrong file.
func TestShardedSnapshotRejectsRoleMixups(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base, shards := shardedSave(t, g, dir, 2)
	mono := filepath.Join(dir, "mono.col")
	if err := g.SaveSnapshot(mono); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedSnapshot(mono, shards); err == nil || !strings.Contains(err.Error(), "not a base file") {
		t.Fatalf("monolithic snapshot as base: got %v, want 'not a base file'", err)
	}
	if _, err := LoadShardedSnapshot(base, []string{shards[0], base}); err == nil || !strings.Contains(err.Error(), "not data-only") {
		t.Fatalf("base file as shard: got %v, want 'not data-only'", err)
	}
}

// TestShardedSnapshotMissingShardFails: a missing shard file is a hard
// error — recovery must never silently load a subset of the data.
func TestShardedSnapshotMissingShardFails(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base, shards := shardedSave(t, g, dir, 2)
	if _, err := LoadShardedSnapshot(base, append(shards, filepath.Join(dir, "missing.col"))); err == nil {
		t.Fatal("missing shard file loaded without error")
	}
}

func TestShardedSnapshotRejectsOutOfRangePartition(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	err = g.SaveShardedSnapshot(t.TempDir(), "base.col", []string{"s0.col"}, func(dict.ID) int {
		return 1
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("got %v, want out-of-range error", err)
	}
}
