package graph

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot: arbitrary bytes must never panic the snapshot reader;
// anything accepted must round-trip.
func FuzzReadSnapshot(f *testing.F) {
	g, err := ParseString(sample)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("repro-rdf-snapshot-v1\n"))
	f.Add([]byte("repro-rdf-snapshot-v1\ngarbage"))
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := back.WriteSnapshot(&out); err != nil {
			t.Fatalf("accepted snapshot cannot be re-written: %v", err)
		}
		again, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-written snapshot rejected: %v", err)
		}
		if again.DataCount() != back.DataCount() {
			t.Fatal("round trip changed data count")
		}
	})
}
