package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dict"
)

// buildHierarchyTurtle decodes a byte string into a small TBox + ABox: each
// byte pair (a, b) adds either a subclass edge Ca ⊑ Cb or a subproperty edge
// pa ⊑ pb (alternating), over 8 classes and 4 properties, plus one instance
// per class so the data side is non-trivial. The decoding is total, so any
// fuzz input maps to some graph — including diamonds, cycles and multi-root
// forests.
func buildHierarchyTurtle(data []byte) string {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://example.org/> .\n")
	for i := 0; i+1 < len(data); i += 2 {
		a, b := int(data[i]), int(data[i+1])
		if i%4 == 0 {
			fmt.Fprintf(&sb, "ex:C%d rdfs:subClassOf ex:C%d .\n", a%8, b%8)
		} else {
			fmt.Fprintf(&sb, "ex:p%d rdfs:subPropertyOf ex:p%d .\n", a%4, b%4)
		}
	}
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&sb, "ex:e%d a ex:C%d .\n", i, i)
	}
	sb.WriteString("ex:e0 ex:p0 ex:e1 .\n")
	return sb.String()
}

// checkIntervalInvariants asserts what the interval encoding promises after
// FromTriples/ParseString re-encoded the graph:
//
//  1. the labeling is idempotent (a second remap is the identity);
//  2. every interval the dictionary serves covers exactly the closure
//     subtree of its root — no member outside, no stranger inside.
func checkIntervalInvariants(t *testing.T, g *Graph) {
	t.Helper()
	s, d := g.Schema(), g.Dict()
	if remap, changed := s.BuildIntervalRemap(); changed {
		t.Fatalf("interval labeling is not idempotent: second remap moves IDs (%v)", remap)
	}
	subtree := func(root dict.ID, down []dict.ID) map[dict.ID]bool {
		m := map[dict.ID]bool{root: true}
		for _, id := range down {
			m[id] = true
		}
		return m
	}
	check := func(kind string, root dict.ID, down []dict.ID) {
		iv, ok := d.Interval(root)
		if !ok {
			return // diamond or cycle: contiguity not promised, exact sets are used
		}
		members := subtree(root, down)
		if iv.Len() != len(members) {
			t.Fatalf("%s %s: interval [%d,%d] covers %d IDs, subtree has %d",
				kind, d.Decode(root), iv.Lo, iv.Hi, iv.Len(), len(members))
		}
		for id := range members {
			if !iv.Contains(id) {
				t.Fatalf("%s %s: subtree member %s outside interval [%d,%d]",
					kind, d.Decode(root), d.Decode(id), iv.Lo, iv.Hi)
			}
		}
	}
	for _, c := range s.Classes() {
		check("class", c, s.SubClasses(c))
	}
	for _, p := range s.Properties() {
		if s.IsClass(p) {
			continue // the class interval wins for dual class/property terms
		}
		check("property", p, s.SubProperties(p))
	}
}

// FuzzIntervalRemap drives the DFS interval labeling with arbitrary
// hierarchy shapes. Seeds cover the cases the encoding must survive rather
// than exploit: chains, diamonds (multiple inheritance), cycles and
// multi-root forests.
func FuzzIntervalRemap(f *testing.F) {
	f.Add([]byte{})                                         // no edges: forest of singletons
	f.Add([]byte{0, 1, 0, 1, 1, 2, 1, 2, 2, 3})             // chain C0⊑C1⊑C2⊑C3 (+ prop chain)
	f.Add([]byte{0, 1, 9, 9, 0, 2, 9, 9, 1, 3, 9, 9, 2, 3}) // diamond: C0⊑C1, C0⊑C2, C1⊑C3, C2⊑C3
	f.Add([]byte{0, 1, 0, 1, 1, 2, 1, 2, 2, 0, 2, 0})       // cycle C0⊑C1⊑C2⊑C0 (equivalent classes)
	f.Add([]byte{0, 2, 9, 9, 1, 2, 9, 9, 4, 6, 9, 9, 5, 6}) // two trees, multi-root
	f.Add([]byte{3, 3, 3, 3})                               // self-loops
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return // bound closure size; shapes repeat beyond this
		}
		g, err := ParseString(buildHierarchyTurtle(data))
		if err != nil {
			return // e.g. the parser rejects some closure shapes; not under test
		}
		checkIntervalInvariants(t, g)
		// Snapshots must preserve the encoding bit-for-bit, intervals included.
		back := roundTripSnapshot(t, g)
		checkIntervalInvariants(t, back)
		a, b := g.AllTriples(), back.AllTriples()
		if len(a) != len(b) {
			t.Fatalf("snapshot changed triple count: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("snapshot changed triple %d: %v vs %v", i, a[i], b[i])
			}
		}
	})
}

func roundTripSnapshot(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}
