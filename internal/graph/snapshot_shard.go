package graph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dict"
	"repro/internal/durable/columnar"
	"repro/internal/rdf"
)

// Sharded snapshots split one logical snapshot into a base file plus N
// data shard files, so a subject-hash-partitioned deployment (see
// internal/shard) checkpoints and recovers per shard:
//
//   - the base file is a v2 columnar snapshot carrying the term table,
//     the closed schema and the declared class/property sets — and no
//     data triples;
//   - shard file i is a v2 columnar snapshot carrying only the data
//     triples whose subject maps to shard i, with every other section
//     empty.
//
// All files share the base's dictionary IDs, so the shard columns
// delta-encode exactly as well as the monolithic layout, and recovery
// decodes the shard files in parallel before one assembly pass rebuilds
// the graph — byte-identical to loading the equivalent monolithic
// snapshot. The partition function is a parameter rather than an import
// so this package stays independent of internal/shard; the durable
// manager passes shard.Of, keeping on-disk and in-memory partitioning
// aligned.

// SaveShardedSnapshot writes the base file and one data shard file per
// entry of shardNames into dir, each with SaveSnapshot's atomicity
// (temp + fsync + rename + directory fsync). shardOf maps a subject ID
// to its shard index in [0, len(shardNames)). Files land in parallel;
// the first error wins, and a failed save never clobbers an existing
// file. The caller (the durable manager) sequences the manifest swap
// that makes the new file set current.
func (g *Graph) SaveShardedSnapshot(dir, baseName string, shardNames []string, shardOf func(dict.ID) int) error {
	n := len(shardNames)
	if n < 1 {
		return fmt.Errorf("graph: sharded snapshot needs at least one shard file")
	}
	base := &columnar.Snapshot{
		Schema:     g.schema.Triples(),
		Classes:    g.schema.Classes(),
		Properties: g.schema.Properties(),
	}
	base.Terms = make([]rdf.Term, g.d.Len())
	for i := range base.Terms {
		base.Terms[i] = g.d.Decode(dict.ID(i + 1))
	}
	// Partition with a counting pass so the split never reallocates;
	// g.data is sorted, so each part stays sorted and delta-encodes well.
	counts := make([]int, n)
	for _, t := range g.data {
		i := shardOf(t.S)
		if i < 0 || i >= n {
			return fmt.Errorf("graph: shardOf(%d) = %d out of range [0,%d)", t.S, i, n)
		}
		counts[i]++
	}
	parts := make([][]dict.Triple, n)
	for i, c := range counts {
		parts[i] = make([]dict.Triple, 0, c)
	}
	for _, t := range g.data {
		i := shardOf(t.S)
		parts[i] = append(parts[i], t)
	}

	errs := make([]error, n+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = saveAtomic(filepath.Join(dir, baseName), func(w io.Writer) error {
			return columnar.Write(w, base)
		})
	}()
	for i := range shardNames {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i+1] = saveAtomic(filepath.Join(dir, shardNames[i]), func(w io.Writer) error {
				return columnar.Write(w, &columnar.Snapshot{Data: parts[i]})
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedSnapshot reconstructs a graph from a base file and its data
// shard files. Shard files decode in parallel (each one's sections also
// decode in parallel, inside columnar.Read), then a single assembly pass
// rebuilds the dictionary, re-closes the schema and sorts the merged
// data — identical IDs and identical triples to the monolithic layout,
// regardless of shard count or order. A base file carrying data, or a
// shard file carrying anything but data, is rejected: mixing the two
// roles means the manifest pointed at the wrong file.
func LoadShardedSnapshot(basePath string, shardPaths []string) (*Graph, error) {
	base, err := readColumnarFile(basePath)
	if err != nil {
		return nil, fmt.Errorf("graph: sharded snapshot base: %w", err)
	}
	if len(base.Data) != 0 {
		return nil, fmt.Errorf("graph: sharded snapshot base %s carries %d data triples (not a base file)", filepath.Base(basePath), len(base.Data))
	}
	parts := make([][]dict.Triple, len(shardPaths))
	errs := make([]error, len(shardPaths))
	var wg sync.WaitGroup
	for i, p := range shardPaths {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			snap, err := readColumnarFile(p)
			if err != nil {
				errs[i] = fmt.Errorf("graph: snapshot shard %s: %w", filepath.Base(p), err)
				return
			}
			if len(snap.Terms) != 0 || len(snap.Schema) != 0 || len(snap.Classes) != 0 || len(snap.Properties) != 0 {
				errs[i] = fmt.Errorf("graph: snapshot shard %s is not data-only (wrong file for this manifest slot)", filepath.Base(p))
				return
			}
			parts[i] = snap.Data
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	data := make([]dict.Triple, 0, total)
	for _, p := range parts {
		data = append(data, p...)
	}
	return buildFromSnapshot(base.Terms, data, base.Schema, base.Classes, base.Properties)
}

// readColumnarFile reads one v2 columnar snapshot file. Sharded layouts
// are newer than the v2 format, so no v1 sniffing here — a v1 file in a
// sharded manifest is an error worth surfacing.
func readColumnarFile(path string) (*columnar.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return columnar.Read(f)
}
