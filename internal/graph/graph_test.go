package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
)

const sample = `
@prefix ex: <http://example.org/> .
ex:Book rdfs:subClassOf ex:Publication .
ex:writtenBy rdfs:domain ex:Book .
ex:doi1 a ex:Book .
ex:doi1 ex:writtenBy _:b1 .
`

func TestParseSplitsSchemaFromData(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.DataCount() != 2 {
		t.Fatalf("want 2 data triples, got %d", g.DataCount())
	}
	c, p, sc, _, dom, _ := g.Schema().Size()
	if c != 2 || p != 1 || sc != 1 || dom != 1 {
		t.Fatalf("schema sizes wrong: %v", g.Schema())
	}
}

func TestAllTriplesIncludesClosedSchema(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	all := g.AllTriples()
	if len(all) != g.DataCount()+len(g.Schema().Triples()) {
		t.Fatalf("AllTriples length %d != data %d + schema %d", len(all), g.DataCount(), len(g.Schema().Triples()))
	}
	for i := 1; i < len(all); i++ {
		if CompareTriples(all[i-1], all[i]) >= 0 {
			t.Fatal("AllTriples not sorted/deduped")
		}
	}
}

func TestFromTriplesRejectsIllFormed(t *testing.T) {
	bad := []rdf.Triple{rdf.NewTriple(rdf.NewLiteral("x"), rdf.NewIRI("p"), rdf.NewIRI("o"))}
	if _, err := FromTriples(bad); err == nil {
		t.Fatal("ill-formed triple must be rejected")
	}
}

func TestFromTriplesRejectsBuiltinConstraint(t *testing.T) {
	bad := []rdf.Triple{rdf.NewTriple(rdf.NewIRI("p"), rdf.SubPropertyOf, rdf.Type)}
	if _, err := FromTriples(bad); err == nil {
		t.Fatal("constraining rdf:type must be rejected")
	}
}

func TestAddData(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	n := g.DataCount()
	add := []rdf.Triple{rdf.NewTriple(rdf.NewIRI("http://example.org/doi2"), rdf.Type, rdf.NewIRI("http://example.org/Book"))}
	if err := g.AddData(add); err != nil {
		t.Fatal(err)
	}
	if g.DataCount() != n+1 {
		t.Fatalf("want %d triples, got %d", n+1, g.DataCount())
	}
	// Duplicates are set-semantics no-ops.
	if err := g.AddData(add); err != nil {
		t.Fatal(err)
	}
	if g.DataCount() != n+1 {
		t.Fatal("duplicate insert must not grow the graph")
	}
}

func TestAddDataRejectsSchemaTriples(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	bad := []rdf.Triple{rdf.NewTriple(rdf.NewIRI("http://c"), rdf.SubClassOf, rdf.NewIRI("http://d"))}
	if err := g.AddData(bad); err == nil {
		t.Fatal("schema triple insertion must be rejected")
	}
}

func TestVal(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	vals := g.Val()
	want := map[string]bool{}
	for _, v := range vals {
		want[v.String()] = true
	}
	for _, needed := range []string{"<http://example.org/doi1>", "_:b1", "<http://example.org/Publication>"} {
		if !want[needed] {
			t.Errorf("Val missing %s", needed)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.nt")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g.DataCount() != 2 {
		t.Fatalf("want 2 data triples, got %d", g.DataCount())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.nt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestDecodedDataRoundTrip(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	dec := g.DecodedData()
	if len(dec) != g.DataCount() {
		t.Fatal("decode length mismatch")
	}
	for _, tr := range dec {
		if !tr.WellFormed() {
			t.Fatalf("decoded triple ill-formed: %v", tr)
		}
	}
}

func TestStringSummary(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "data:2") {
		t.Fatalf("unexpected summary %q", g.String())
	}
}

func TestParseError(t *testing.T) {
	if _, err := ParseString("<broken"); err == nil {
		t.Fatal("syntax error must propagate")
	}
}

func TestRemoveData(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	n := g.DataCount()
	doi1 := rdf.NewIRI("http://example.org/doi1")
	removed, err := g.RemoveData([]rdf.Triple{
		rdf.NewTriple(doi1, rdf.Type, rdf.NewIRI("http://example.org/Book")),
	})
	if err != nil || removed != 1 {
		t.Fatalf("removed=%d err=%v", removed, err)
	}
	if g.DataCount() != n-1 {
		t.Fatalf("data count %d, want %d", g.DataCount(), n-1)
	}
	// Unknown triple: no-op.
	removed, err = g.RemoveData([]rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://x"), rdf.NewIRI("http://y"), rdf.NewIRI("http://z")),
	})
	if err != nil || removed != 0 {
		t.Fatalf("unknown removal: removed=%d err=%v", removed, err)
	}
	// Schema triple rejected.
	if _, err := g.RemoveData([]rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://a"), rdf.SubClassOf, rdf.NewIRI("http://b")),
	}); err == nil {
		t.Fatal("schema removal must be rejected")
	}
}
