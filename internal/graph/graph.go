// Package graph assembles an RDF graph in the database fragment of the
// paper: instance (data) triples plus RDFS schema constraints, dictionary
// encoded. The DB fragment places no restriction on triples and restricts
// entailment to the RDFS rules, so loading only needs to split schema from
// data and close the schema.
package graph

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/dict"
	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/schema"
)

// Graph is an RDF graph of the database fragment: dictionary-encoded data
// triples plus a closed RDFS schema.
type Graph struct {
	d      *dict.Dict
	schema *schema.Schema
	data   []dict.Triple // sorted (S,P,O), deduplicated
}

// FromTriples builds a graph from raw triples: RDFS constraint triples feed
// the schema (which is closed), the rest become data triples. Ill-formed
// triples are rejected.
func FromTriples(ts []rdf.Triple) (*Graph, error) {
	d := dict.New()
	b := schema.NewBuilder(d)
	var data []dict.Triple
	for i, t := range ts {
		if !t.WellFormed() {
			return nil, fmt.Errorf("graph: triple %d is ill-formed: %s", i, t)
		}
		if b.AddTriple(t) {
			continue
		}
		data = append(data, d.EncodeTriple(t))
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{d: d, schema: b.Close(), data: sortDedup(data)}
	g.Reencode()
	return g, nil
}

// Reencode applies the hierarchy-aware interval encoding: IDs are permuted
// so every subClassOf/subPropertyOf subtree occupies a contiguous interval
// (schema.BuildIntervalRemap), the dictionary, schema and data triples are
// rewritten through the remap table, and the subtree-interval table is
// installed on the dictionary. Idempotent; called after every schema
// (re)build. Terms encoded later (new data) take IDs past the hierarchy
// blocks, which leaves existing intervals valid.
func (g *Graph) Reencode() {
	remap, changed := g.schema.BuildIntervalRemap()
	if changed {
		if err := g.d.Permute(remap); err != nil {
			panic(fmt.Sprintf("graph: reencode: %v", err))
		}
		g.schema = g.schema.Remapped(remap)
		for i, t := range g.data {
			g.data[i] = dict.Triple{S: remap[t.S], P: remap[t.P], O: remap[t.O]}
		}
		g.data = sortDedup(g.data)
	}
	g.d.SetIntervals(g.schema.SubtreeIntervals())
}

// Parse reads triples in N-Triples/Turtle-subset syntax and builds a graph.
func Parse(r io.Reader) (*Graph, error) {
	ts, err := ntriples.ParseAll(r)
	if err != nil {
		return nil, err
	}
	return FromTriples(ts)
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) {
	ts, err := ntriples.ParseString(s)
	if err != nil {
		return nil, err
	}
	return FromTriples(ts)
}

// LoadFile parses the file at path into a graph.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Dict returns the graph's dictionary.
func (g *Graph) Dict() *dict.Dict { return g.d }

// Schema returns the closed RDFS schema.
func (g *Graph) Schema() *schema.Schema { return g.schema }

// Data returns the encoded instance triples (sorted, deduplicated). The
// slice must not be mutated.
func (g *Graph) Data() []dict.Triple { return g.data }

// DataCount returns the number of instance triples.
func (g *Graph) DataCount() int { return len(g.data) }

// AllTriples returns data plus closed-schema triples: the database the
// reformulated queries are evaluated against (schema-level atoms are
// answered from the closed schema).
func (g *Graph) AllTriples() []dict.Triple {
	all := make([]dict.Triple, 0, len(g.data)+len(g.schema.Triples()))
	all = append(all, g.data...)
	all = append(all, g.schema.Triples()...)
	return sortDedup(all)
}

// AddData appends instance triples to the graph (schema triples are
// rejected: constraint changes require rebuilding the graph so the closure
// stays consistent — see experiment E5).
func (g *Graph) AddData(ts []rdf.Triple) error {
	add := make([]dict.Triple, 0, len(ts))
	for i, t := range ts {
		if !t.WellFormed() {
			return fmt.Errorf("graph: triple %d is ill-formed: %s", i, t)
		}
		if rdf.IsSchemaTriple(t) {
			return fmt.Errorf("graph: triple %d declares a constraint (%s); rebuild the graph to change constraints", i, t)
		}
		add = append(add, g.d.EncodeTriple(t))
	}
	g.data = sortDedup(append(g.data, add...))
	return nil
}

// RemoveData deletes instance triples from the graph (absent triples are
// ignored; schema triples are rejected like in AddData). It returns the
// number of triples actually removed.
func (g *Graph) RemoveData(ts []rdf.Triple) (int, error) {
	drop := make(map[dict.Triple]bool, len(ts))
	for i, t := range ts {
		if !t.WellFormed() {
			return 0, fmt.Errorf("graph: triple %d is ill-formed: %s", i, t)
		}
		if rdf.IsSchemaTriple(t) {
			return 0, fmt.Errorf("graph: triple %d declares a constraint (%s); rebuild the graph to change constraints", i, t)
		}
		if enc, ok := g.lookupTriple(t); ok {
			drop[enc] = true
		}
	}
	if len(drop) == 0 {
		return 0, nil
	}
	kept := g.data[:0]
	removed := 0
	for _, t := range g.data {
		if drop[t] {
			removed++
			continue
		}
		kept = append(kept, t)
	}
	g.data = kept
	return removed, nil
}

// lookupTriple encodes a triple without growing the dictionary; ok is
// false when any term is unknown (the triple then cannot be stored).
func (g *Graph) lookupTriple(t rdf.Triple) (dict.Triple, bool) {
	s, ok1 := g.d.Lookup(t.S)
	p, ok2 := g.d.Lookup(t.P)
	o, ok3 := g.d.Lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return dict.Triple{}, false
	}
	return dict.Triple{S: s, P: p, O: o}, true
}

// DecodedData decodes all instance triples back to terms, in sorted order.
func (g *Graph) DecodedData() []rdf.Triple {
	out := make([]rdf.Triple, len(g.data))
	for i, t := range g.data {
		out[i] = g.d.DecodeTriple(t)
	}
	return out
}

// Val returns Val(G): the set of values of the graph (data plus schema).
func (g *Graph) Val() []rdf.Term {
	all := g.AllTriples()
	dec := make([]rdf.Triple, len(all))
	for i, t := range all {
		dec[i] = g.d.DecodeTriple(t)
	}
	return rdf.Val(dec)
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{data:%d %s}", len(g.data), g.schema)
}

// CompareTriples orders encoded triples by (S, P, O).
func CompareTriples(a, b dict.Triple) int {
	switch {
	case a.S != b.S:
		if a.S < b.S {
			return -1
		}
		return 1
	case a.P != b.P:
		if a.P < b.P {
			return -1
		}
		return 1
	case a.O != b.O:
		if a.O < b.O {
			return -1
		}
		return 1
	}
	return 0
}

func sortDedup(ts []dict.Triple) []dict.Triple {
	if len(ts) < 2 {
		return ts
	}
	sort.Slice(ts, func(i, j int) bool { return CompareTriples(ts[i], ts[j]) < 0 })
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}
