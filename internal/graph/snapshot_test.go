package graph

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.DataCount() != g.DataCount() {
		t.Fatalf("data count %d != %d", back.DataCount(), g.DataCount())
	}
	// IDs must be identical: encoded triples compare equal directly.
	a, b := g.AllTriples(), back.AllTriples()
	if len(a) != len(b) {
		t.Fatalf("triple counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d: %v != %v", i, a[i], b[i])
		}
	}
	if g.Schema().String() != back.Schema().String() {
		t.Fatalf("schema differs: %s vs %s", g.Schema(), back.Schema())
	}
}

func TestSnapshotFileSaveLoad(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.snap")
	if err := g.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.DataCount() != g.DataCount() {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a snapshot at all",
		"repro-rdf-snapshot-v1\ngarbage after magic",
	}
	for i, c := range cases {
		if _, err := ReadSnapshot(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// writeSnapshotV1 emits the legacy gob format, preserved here so the
// read-compat and truncation-hardening tests can exercise the v1 path
// without an archived fixture.
func writeSnapshotV1(g *Graph, w io.Writer) error {
	if _, err := io.WriteString(w, snapshotMagicV1); err != nil {
		return err
	}
	snap := snapshot{
		Data:       g.data,
		Schema:     g.schema.Triples(),
		Classes:    g.schema.Classes(),
		Properties: g.schema.Properties(),
	}
	snap.Terms = make([]rdf.Term, g.d.Len())
	for i := range snap.Terms {
		snap.Terms[i] = g.d.Decode(dict.ID(i + 1))
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// TestSnapshotV1ReadCompat: snapshots written by the pre-columnar format
// must keep loading, ID-identically.
func TestSnapshotV1ReadCompat(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeSnapshotV1(g, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot unreadable: %v", err)
	}
	a, b := g.AllTriples(), back.AllTriples()
	if len(a) != len(b) {
		t.Fatalf("triple counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestSnapshotRejectsTruncationExhaustive cuts a valid snapshot at every
// byte offset, in both formats. A partially copied snapshot file must
// never load as a smaller graph — short reads are hard errors everywhere,
// including a clean EOF right after the magic or between gob messages
// (the paths where the v1 decoder's bare io.EOF used to look like a
// normal end of stream).
func TestSnapshotRejectsTruncationExhaustive(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := g.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := writeSnapshotV1(g, &v1); err != nil {
		t.Fatal(err)
	}
	for name, full := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()} {
		for cut := 0; cut < len(full); cut++ {
			if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
				t.Fatalf("%s: truncation at %d of %d bytes loaded without error",
					name, cut, len(full))
			}
		}
	}
}

func TestSnapshotRejectsDanglingIDs(t *testing.T) {
	// Build a legit snapshot, then poke an out-of-range triple into the
	// reloaded graph (same package) and re-serialize: the reader must
	// reject the dangling reference.
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	good.data = append(good.data, dict.Triple{S: 9999, P: 9999, O: 9999})
	var buf2 bytes.Buffer
	if err := good.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("dangling IDs must be rejected")
	}
}

// Property: snapshots round-trip random graphs bit-identically at the
// triple level.
func TestSnapshotRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString("@prefix ex: <http://example.org/> .\n")
		for i := 0; i < 3+r.Intn(5); i++ {
			fmt.Fprintf(&sb, "ex:C%d rdfs:subClassOf ex:C%d .\n", i, i+1+r.Intn(3))
		}
		for i := 0; i < 5+r.Intn(30); i++ {
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "ex:e%d a ex:C%d .\n", r.Intn(10), r.Intn(8))
			case 1:
				fmt.Fprintf(&sb, "ex:e%d ex:p%d ex:e%d .\n", r.Intn(10), r.Intn(3), r.Intn(10))
			default:
				fmt.Fprintf(&sb, "ex:e%d ex:q \"lit%d\" .\n", r.Intn(10), r.Intn(5))
			}
		}
		g, err := ParseString(sb.String())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a, b := g.AllTriples(), back.AllTriples()
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d vs %d triples", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: triple %d differs", seed, i)
			}
		}
	}
}

// TestSaveSnapshotCrashedTempNeverReplaces simulates a crash mid-save: a
// partial payload sits in the directory under a temp name (exactly the
// on-disk state if the process dies before the rename). The good snapshot
// at the target path must be untouched, and the partial file must not be
// loadable as a snapshot.
func TestSaveSnapshotCrashedTempNeverReplaces(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.snap")
	if err := g.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Crash injection: half a snapshot under the temp naming scheme.
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	partial := buf.Bytes()[:buf.Len()/2]
	crashed := filepath.Join(dir, ".snapshot-crashed.tmp")
	if err := os.WriteFile(crashed, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("good snapshot unloadable after simulated crash: %v", err)
	}
	if back.DataCount() != g.DataCount() {
		t.Fatalf("good snapshot corrupted: %d data triples, want %d",
			back.DataCount(), g.DataCount())
	}
	if _, err := LoadSnapshot(crashed); err == nil {
		t.Fatal("partial temp file accepted as a snapshot")
	}
}

// TestSaveSnapshotFailureKeepsTargetAndCleansTemp forces the final rename to
// fail (the target path is a directory) and checks the error path: the save
// reports the error and leaves no temp file behind.
func TestSaveSnapshotFailureKeepsTargetAndCleansTemp(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "iamadir")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := g.SaveSnapshot(target); err == nil {
		t.Fatal("rename onto a directory must fail")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, ".snapshot-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("failed save leaked temp files: %v", leftovers)
	}
}

// TestSaveSnapshotConcurrent hammers one target path from many goroutines
// saving two different graphs (run under -race in CI). Whatever interleaving
// happens, the final file must be a complete snapshot of one of them —
// never a torn mix — and no temp files may remain.
func TestSaveSnapshotConcurrent(t *testing.T) {
	g1, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseString(sample + "ex:doi2 a ex:Book .\nex:doi3 a ex:Publication .\n")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.snap")

	const savers = 8
	var wg sync.WaitGroup
	errs := make(chan error, savers)
	for i := 0; i < savers; i++ {
		g := g1
		if i%2 == 1 {
			g = g2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if err := g.SaveSnapshot(path); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("final snapshot unloadable: %v", err)
	}
	if n := back.DataCount(); n != g1.DataCount() && n != g2.DataCount() {
		t.Fatalf("final snapshot has %d data triples, want %d or %d",
			n, g1.DataCount(), g2.DataCount())
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, ".snapshot-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("concurrent saves leaked temp files: %v", leftovers)
	}
}
