package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SLO
		ok   bool
	}{
		{"250ms:99", SLO{250, 0.99}, true},
		{"1s:0.999", SLO{1000, 0.999}, true},
		{"500ms:99.9", SLO{500, 0.999}, true},
		{"250ms", SLO{}, false},
		{"abc:99", SLO{}, false},
		{"250ms:0", SLO{}, false},
		{"250ms:100", SLO{}, false},
		{"-1s:99", SLO{}, false},
	} {
		got, err := ParseSLO(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseSLO(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if got.LatencyMillis != tc.want.LatencyMillis ||
			got.Objective < tc.want.Objective-1e-9 || got.Objective > tc.want.Objective+1e-9 {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestSLOTrackerBurnRates(t *testing.T) {
	reg := NewRegistry()
	tr := NewSLOTracker(SLO{LatencyMillis: 100, Objective: 0.99}, reg)
	now := time.Unix(1700000000, 0)
	// 90 good + 10 bad => badFrac 0.1, allowed 0.01 => burn 10.
	for i := 0; i < 90; i++ {
		tr.Observe("ref-ucq", 50, true, now)
	}
	for i := 0; i < 5; i++ {
		tr.Observe("ref-ucq", 500, true, now) // over latency: bad
	}
	for i := 0; i < 5; i++ {
		tr.Observe("ref-ucq", 50, false, now) // error: bad
	}
	rates := tr.BurnRates(now)
	if len(rates) != len(BurnWindows) {
		t.Fatalf("got %d rates, want %d", len(rates), len(BurnWindows))
	}
	for _, r := range rates {
		if r.Good != 90 || r.Bad != 10 {
			t.Fatalf("window %s: good=%d bad=%d", r.Window, r.Good, r.Bad)
		}
		if r.Burn < 9.99 || r.Burn > 10.01 {
			t.Fatalf("window %s: burn=%v, want 10", r.Window, r.Burn)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["slo.good.ref-ucq"] != 90 || snap.Counters["slo.bad.ref-ucq"] != 10 {
		t.Fatalf("counters: %v", snap.Counters)
	}
	tr.Publish(now)
	snap = reg.Snapshot()
	if v := snap.FloatGauges["slo.burn_rate_5m.ref-ucq"]; v < 9.99 || v > 10.01 {
		t.Fatalf("burn gauge = %v", v)
	}
}

func TestSLOTrackerWindowExpiry(t *testing.T) {
	tr := NewSLOTracker(SLO{LatencyMillis: 100, Objective: 0.99}, nil)
	start := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		tr.Observe("sat", 500, true, start) // all bad
	}
	// 6 minutes later: outside 5m window, inside 1h window.
	later := start.Add(6 * time.Minute)
	byWindow := map[string]BurnRate{}
	for _, r := range tr.BurnRates(later) {
		byWindow[r.Window] = r
	}
	if byWindow["5m"].Bad != 0 {
		t.Fatalf("5m window should have expired: %+v", byWindow["5m"])
	}
	if byWindow["1h"].Bad != 10 {
		t.Fatalf("1h window should retain: %+v", byWindow["1h"])
	}
	// 2 hours later: ring fully recycled.
	much := start.Add(2 * time.Hour)
	for _, r := range tr.BurnRates(much) {
		if r.Good+r.Bad != 0 {
			t.Fatalf("stale buckets leaked into %s: %+v", r.Window, r)
		}
	}
}

func TestSLOTrackerNilAndDefaults(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("x", 1, true, time.Unix(0, 0)) // no panic
	tr.Publish(time.Unix(0, 0))
	if got := tr.BurnRates(time.Unix(0, 0)); got != nil {
		t.Fatalf("nil tracker rates: %v", got)
	}
	def := NewSLOTracker(SLO{}, nil)
	if def.SLO() != DefaultSLO {
		t.Fatalf("zero SLO should default: %+v", def.SLO())
	}
}

func TestFloatGaugeProm(t *testing.T) {
	reg := NewRegistry()
	reg.FloatGauge("slo.burn_rate_5m.ref-ucq").Set(2.5)
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `slo_burn_rate_5m{strategy="ref-ucq"} 2.5`
	if !strings.Contains(out, want) {
		t.Fatalf("prom output missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "# TYPE slo_burn_rate_5m gauge") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	var g *FloatGauge
	g.Set(1) // nil-tolerant
	if g.Value() != 0 {
		t.Fatal("nil FloatGauge value")
	}
}

func TestQErrorPromFamily(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("qerror.hashjoin", DefaultQErrorBuckets...).Observe(42)
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `qerror_count{op="hashjoin"} 1`) {
		t.Fatalf("qerror family not labeled:\n%s", sb.String())
	}
}
