package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): counters gain the conventional _total suffix,
// histograms emit cumulative _bucket{le=...} series plus _sum and _count,
// and the per-strategy / per-path name suffixes the engine and HTTP layer
// use ("engine.queries.ref-gcov", "http.latency_ms./query") become proper
// labels ({strategy="ref-gcov"}, {path="/query"}).

// promLabelRules maps dotted-name prefixes to the label the remainder of
// the name encodes.
var promLabelRules = []struct{ prefix, label string }{
	{"engine.queries.", "strategy"},
	{"engine.latency_ms.", "strategy"},
	{"http.requests.", "path"},
	{"http.latency_ms.", "path"},
	{"http.legacy_requests.", "path"},
	{"viewcache.", "event"},
	{"plancache.", "event"},
	{"admission.", "event"},
	{"rangeref.", "event"},
	{"journal.", "event"},
	{"wal.", "event"},
	{"recovery.", "event"},
	{"slo.good.", "strategy"},
	{"slo.bad.", "strategy"},
	{"slo.burn_rate_5m.", "strategy"},
	{"slo.burn_rate_1h.", "strategy"},
	{"qerror.", "op"},
	{"shard.rows.", "shard"},
	{"shard.", "event"},
}

// promName splits a dotted registry name into a sanitized metric family
// name and an optional {label="value"} selector.
func promName(dotted string) (name, labels string) {
	for _, rule := range promLabelRules {
		if strings.HasPrefix(dotted, rule.prefix) && len(dotted) > len(rule.prefix) {
			base := strings.TrimSuffix(rule.prefix, ".")
			val := dotted[len(rule.prefix):]
			return sanitizeMetricName(base), "{" + rule.label + "=\"" + escapeLabelValue(val) + "\"}"
		}
	}
	return sanitizeMetricName(dotted), ""
}

// sanitizeMetricName maps an arbitrary dotted name onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; every run of invalid
// characters collapses into a single underscore.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastUnderscore := false
	for i, r := range s {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !valid {
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
			continue
		}
		b.WriteRune(r)
		lastUnderscore = r == '_'
	}
	out := b.String()
	if out == "" {
		return "_"
	}
	return out
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// withLE inserts the le label into an existing (possibly empty) selector.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatPromFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type promSeries struct {
	labels string
	value  string
	hist   *HistogramSnapshot
}

type promFamily struct {
	name   string
	typ    string
	series []promSeries
}

// WritePrometheus renders every instrument of the registry in Prometheus
// text format. The snapshot is taken once up front, so the output is a
// consistent point-in-time view.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	fams := map[string]*promFamily{}
	add := func(dotted, typ string, s promSeries) {
		name, labels := promName(dotted)
		if typ == "counter" {
			name += "_total"
		}
		s.labels = labels
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		f.series = append(f.series, s)
	}
	for n, v := range snap.Counters {
		add(n, "counter", promSeries{value: strconv.FormatInt(v, 10)})
	}
	for n, v := range snap.Gauges {
		add(n, "gauge", promSeries{value: strconv.FormatInt(v, 10)})
	}
	for n, v := range snap.FloatGauges {
		add(n, "gauge", promSeries{value: formatPromFloat(v)})
	}
	for n := range snap.Histograms {
		h := snap.Histograms[n]
		add(n, "histogram", promSeries{hist: &h})
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if f.typ != "histogram" {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, s.value); err != nil {
					return err
				}
				continue
			}
			if err := writePromHistogram(w, f.name, s.labels, s.hist); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name, labels string, h *HistogramSnapshot) error {
	cum := int64(0)
	for i, bound := range h.Bounds {
		if i < len(h.BucketCounts) {
			cum += h.BucketCounts[i]
		}
		le := formatPromFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatPromFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
	return err
}
