package metrics

import (
	"encoding/json"
	"sync"
	"time"
)

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	Time     time.Time `json:"time"`
	Query    string    `json:"query"`
	Strategy string    `json:"strategy,omitempty"`
	Millis   float64   `json:"millis"`
	Rows     int       `json:"rows,omitempty"`
	Err      string    `json:"error,omitempty"`
	// Outcome is the query's final disposition — "ok", "error", "canceled",
	// "budget" or "shed" (journal.Outcome* values) — so a shed or canceled
	// query is distinguishable from a slow successful one.
	Outcome string `json:"outcome,omitempty"`
	// RequestID correlates the entry with the request's structured log
	// lines and trace output (the X-Request-Id header).
	RequestID string `json:"requestId,omitempty"`
	// Trace is the query's full span tree (trace.SpanJSON), pre-marshaled
	// so the log stays decoupled from the trace package.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// SlowQueryLog is a bounded ring buffer of slow-query entries: constant
// memory no matter how many queries cross the threshold, newest entries
// win. The threshold decision belongs to the caller (the HTTP layer);
// the log only stores. Safe for concurrent use; nil-tolerant.
type SlowQueryLog struct {
	mu      sync.Mutex
	entries []SlowQuery // ring storage
	next    int         // next write position
	filled  bool        // ring has wrapped
	total   int64       // entries ever recorded (incl. overwritten)
}

// NewSlowQueryLog returns a log keeping the most recent capacity entries
// (128 when capacity <= 0).
func NewSlowQueryLog(capacity int) *SlowQueryLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowQueryLog{entries: make([]SlowQuery, capacity)}
}

// Add records one entry, evicting the oldest when full.
func (l *SlowQueryLog) Add(e SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = e
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.filled = true
	}
	l.total++
}

// Entries returns the retained entries, newest first.
func (l *SlowQueryLog) Entries() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.entries)
	}
	out := make([]SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.entries)
		}
		out = append(out, l.entries[idx])
	}
	return out
}

// Total returns how many entries were ever recorded, including ones the
// ring has since overwritten.
func (l *SlowQueryLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
