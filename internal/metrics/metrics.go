// Package metrics is a small, dependency-free metrics substrate for the
// query-answering server: atomic counters and gauges, bounded histograms
// with quantile estimation, and a registry that snapshots everything as a
// JSON-friendly value. The engine and executor record per-strategy query
// counts and latencies, reformulation sizes, plan-cache traffic and row
// volumes into one registry; the HTTP layer exposes it at GET /metrics.
//
// All types are safe for concurrent use, and every method tolerates a nil
// receiver (a nil *Registry hands out nil instruments whose methods are
// no-ops), so instrumented code never has to branch on "metrics enabled".
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value (e.g. busy workers).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float value (e.g. an SLO burn rate).
// Stored as atomic bits so readers never see a torn write.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are millisecond bucket upper bounds covering
// sub-millisecond index probes up to the 30s default request timeout.
var DefaultLatencyBuckets = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000,
}

// DefaultSizeBuckets are bucket upper bounds for cardinality-like values
// (reformulation CQ counts, row counts).
var DefaultSizeBuckets = []float64{
	1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000, 300000,
}

// DefaultQErrorBuckets are bucket upper bounds for q-error observations
// (max(est/actual, actual/est), always >= 1). A perfectly calibrated
// estimator lands everything in the first bucket; the top buckets catch
// the multiple-orders-of-magnitude misestimates that flip plan choices.
var DefaultQErrorBuckets = []float64{
	1.5, 2, 3, 5, 10, 30, 100, 1000, 10000, 100000,
}

// Histogram counts observations into fixed buckets — memory is bounded by
// the bucket count, never by the observation count — and estimates
// quantiles by linear interpolation within the winning bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds (DefaultLatencyBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Bounds and BucketCounts expose the raw buckets for the Prometheus
	// exposition: ascending upper bounds, with BucketCounts carrying one
	// extra trailing +Inf bucket. Excluded from the JSON payload, whose
	// quantile summary covers the human-facing view.
	Bounds       []float64 `json:"-"`
	BucketCounts []int64   `json:"-"`
}

// Snapshot summarizes the histogram. All fields are captured under one
// lock acquisition, so counts, sum and buckets always describe the same
// set of observations even under concurrent writers.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		P50:    h.quantileLocked(0.50),
		P95:    h.quantileLocked(0.95),
		P99:    h.quantileLocked(0.99),
		Bounds: append([]float64(nil), h.bounds...), BucketCounts: append([]int64(nil), h.counts...),
	}
}

// Quantile estimates the q-quantile (q in [0,1]) of the observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// The target observation lies in bucket i: interpolate between the
		// bucket's bounds, clamped to the observed min/max so tiny samples
		// do not report the bucket edge.
		lo := h.min
		if i > 0 {
			lo = math.Max(lo, h.bounds[i-1])
		}
		hi := h.max
		if i < len(h.bounds) {
			hi = math.Min(hi, h.bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.max
}

// Registry is a named collection of instruments. Instruments are created
// on first use and live forever (the name set is small and code-driven).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		fgauges:  map[string]*FloatGauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it if needed.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (DefaultLatencyBuckets when none) if needed; bounds are ignored
// for an existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-friendly view of a registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"floatGauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for n, g := range r.fgauges {
		fgauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, g := range fgauges {
		snap.FloatGauges[n] = g.Value()
	}
	for n, h := range hists {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}
