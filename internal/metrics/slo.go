package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO is a latency service-level objective: Objective (a fraction, e.g.
// 0.99) of queries should finish successfully within LatencyMillis.
type SLO struct {
	LatencyMillis float64
	Objective     float64
}

// DefaultSLO is used when the operator does not pass -slo: 99% of
// queries within 500ms — loose enough to be meaningful on a laptop,
// tight enough that an overload or a strategy regression burns visibly.
var DefaultSLO = SLO{LatencyMillis: 500, Objective: 0.99}

// ParseSLO parses the -slo flag syntax "<latency>:<objective>", where
// latency is a Go duration ("250ms", "1s") and objective is either a
// fraction ("0.999") or a percentage ("99.9").
func ParseSLO(s string) (SLO, error) {
	lat, objStr, ok := strings.Cut(s, ":")
	if !ok {
		return SLO{}, fmt.Errorf("slo %q: want <latency>:<objective>, e.g. 250ms:99.9", s)
	}
	d, err := time.ParseDuration(strings.TrimSpace(lat))
	if err != nil {
		return SLO{}, fmt.Errorf("slo %q: bad latency: %w", s, err)
	}
	obj, err := strconv.ParseFloat(strings.TrimSpace(objStr), 64)
	if err != nil {
		return SLO{}, fmt.Errorf("slo %q: bad objective: %w", s, err)
	}
	if obj > 1 {
		obj /= 100 // "99.9" means 99.9%
	}
	if d <= 0 || obj <= 0 || obj >= 1 {
		return SLO{}, fmt.Errorf("slo %q: need latency > 0 and objective in (0,1)", s)
	}
	return SLO{LatencyMillis: float64(d) / float64(time.Millisecond), Objective: obj}, nil
}

// String renders the SLO in the -slo flag syntax.
func (s SLO) String() string {
	return fmt.Sprintf("%s:%g", time.Duration(s.LatencyMillis*float64(time.Millisecond)), s.Objective*100)
}

// sloBucketSeconds is the ring resolution; sloBuckets x that is the
// longest burn-rate window (1h).
const (
	sloBucketSeconds = 10
	sloBuckets       = 360
)

// BurnWindows are the multi-window burn-rate horizons exposed as
// slo.burn_rate_5m.* / slo.burn_rate_1h.* gauges — the classic
// fast/slow pair: the short window reacts, the long window confirms.
var BurnWindows = []struct {
	Name   string
	Window time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

type sloBucket struct {
	epoch int64 // unix seconds / sloBucketSeconds; 0 = never used
	good  int64
	bad   int64
}

type sloSeries struct {
	buckets [sloBuckets]sloBucket
}

// SLOTracker classifies every finished query as good or bad against one
// SLO, per strategy, and derives multi-window burn rates: burn =
// observedBadFraction / allowedBadFraction, so 1.0 means exactly
// spending the error budget, >1 means burning it faster. Counts go to
// slo.good.<strategy>/slo.bad.<strategy> counters in the registry;
// burn-rate gauges are refreshed by Publish. Safe for concurrent use;
// nil-tolerant.
type SLOTracker struct {
	slo SLO
	reg *Registry

	mu     sync.Mutex
	series map[string]*sloSeries
}

// NewSLOTracker returns a tracker for the given objective, recording
// into reg (which may be nil; the tracker still tracks).
func NewSLOTracker(slo SLO, reg *Registry) *SLOTracker {
	if slo.LatencyMillis <= 0 || slo.Objective <= 0 || slo.Objective >= 1 {
		slo = DefaultSLO
	}
	return &SLOTracker{slo: slo, reg: reg, series: map[string]*sloSeries{}}
}

// SLO returns the tracked objective.
func (t *SLOTracker) SLO() SLO {
	if t == nil {
		return SLO{}
	}
	return t.slo
}

// Observe records one finished query: good means it succeeded within
// the SLO latency. Strategy labels the series ("" folds into "all").
func (t *SLOTracker) Observe(strategy string, millis float64, ok bool, now time.Time) {
	if t == nil {
		return
	}
	if strategy == "" {
		strategy = "all"
	}
	good := ok && millis <= t.slo.LatencyMillis
	if t.reg != nil {
		if good {
			t.reg.Counter("slo.good." + strategy).Inc()
		} else {
			t.reg.Counter("slo.bad." + strategy).Inc()
		}
	}
	epoch := now.Unix() / sloBucketSeconds
	idx := int(epoch % sloBuckets)
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.series[strategy]
	if s == nil {
		s = &sloSeries{}
		t.series[strategy] = s
	}
	b := &s.buckets[idx]
	if b.epoch != epoch {
		b.epoch, b.good, b.bad = epoch, 0, 0
	}
	if good {
		b.good++
	} else {
		b.bad++
	}
}

// BurnRate is one strategy x window burn-rate sample.
type BurnRate struct {
	Strategy string  `json:"strategy"`
	Window   string  `json:"window"`
	Good     int64   `json:"good"`
	Bad      int64   `json:"bad"`
	Burn     float64 `json:"burn"`
}

// BurnRates computes the burn rate for every tracked strategy over
// every BurnWindow, sorted by strategy then window. Windows with no
// traffic report burn 0.
func (t *SLOTracker) BurnRates(now time.Time) []BurnRate {
	if t == nil {
		return nil
	}
	nowEpoch := now.Unix() / sloBucketSeconds
	allowedBad := 1 - t.slo.Objective
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []BurnRate
	for strategy, s := range t.series {
		for _, w := range BurnWindows {
			horizon := nowEpoch - int64(w.Window/(sloBucketSeconds*time.Second))
			var good, bad int64
			for i := range s.buckets {
				b := &s.buckets[i]
				if b.epoch > horizon && b.epoch <= nowEpoch {
					good += b.good
					bad += b.bad
				}
			}
			burn := 0.0
			if total := good + bad; total > 0 {
				burn = (float64(bad) / float64(total)) / allowedBad
			}
			out = append(out, BurnRate{Strategy: strategy, Window: w.Name, Good: good, Bad: bad, Burn: burn})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strategy != out[j].Strategy {
			return out[i].Strategy < out[j].Strategy
		}
		return out[i].Window < out[j].Window
	})
	return out
}

// Publish refreshes the slo.burn_rate_<window>.<strategy> float gauges
// from the rings — called right before metrics exposition so scrapes
// see current burn rates without a background ticker.
func (t *SLOTracker) Publish(now time.Time) {
	if t == nil || t.reg == nil {
		return
	}
	// The window set is closed (BurnWindows), so each window is its own
	// literal family — new windows must also add a prom label rule.
	for _, br := range t.BurnRates(now) {
		switch br.Window {
		case "5m":
			t.reg.FloatGauge("slo.burn_rate_5m." + br.Strategy).Set(br.Burn)
		case "1h":
			t.reg.FloatGauge("slo.burn_rate_1h." + br.Strategy).Set(br.Burn)
		}
	}
}
