package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var l *SlowQueryLog
	l.Add(SlowQuery{})
	if l.Entries() != nil || l.Total() != 0 {
		t.Fatal("nil slow log must be empty")
	}
	var h *Histogram
	h.Observe(3)
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1, 2, 5, 10, 100)
	// 100 observations uniform over (0, 100].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot stats wrong: %+v", s)
	}
	if math.Abs(s.Sum-5050) > 1e-9 {
		t.Fatalf("sum = %v, want 5050", s.Sum)
	}
	// The p50 of a uniform (0,100] sample lies in the (10,100] bucket;
	// interpolation must land well inside it.
	if s.P50 < 10 || s.P50 > 100 {
		t.Fatalf("p50 = %v, want within (10,100]", s.P50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.P99 > 100 {
		t.Fatalf("p99 = %v exceeds max", s.P99)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for i := 0; i < 50; i++ {
		h.Observe(42)
	}
	s := h.Snapshot()
	// Every quantile of a constant sample is that constant (min/max
	// clamping, not bucket edges).
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q != 42 {
			t.Fatalf("quantile of constant sample = %v, want 42", q)
		}
	}
}

func TestHistogramAboveTopBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(50)
	h.Observe(70)
	s := h.Snapshot()
	if s.P99 > 70 || s.P99 < 50 {
		t.Fatalf("overflow-bucket p99 = %v, want within [50,70]", s.P99)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, n = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat").Observe(float64(i % 10))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*n {
		t.Fatalf("counter = %d, want %d", got, workers*n)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != workers*n {
		t.Fatalf("histogram count = %d, want %d", got, workers*n)
	}
	snap := r.Snapshot()
	if snap.Counters["hits"] != workers*n || snap.Gauges["depth"] != workers*n {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
}

func TestSlowQueryLogRing(t *testing.T) {
	l := NewSlowQueryLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowQuery{Query: string(rune('a' + i)), Time: time.Unix(int64(i), 0)})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
	// Newest first: e, d, c.
	if got[0].Query != "e" || got[1].Query != "d" || got[2].Query != "c" {
		t.Fatalf("order wrong: %+v", got)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
}

func TestSlowQueryLogConcurrent(t *testing.T) {
	l := NewSlowQueryLog(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(SlowQuery{Query: "q"})
				l.Entries()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 400 {
		t.Fatalf("total = %d, want 400", l.Total())
	}
	if len(l.Entries()) != 16 {
		t.Fatalf("retained = %d, want 16", len(l.Entries()))
	}
}
