package metrics

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("engine.queries").Add(5)
	r.Counter("engine.queries.sat").Add(2)
	r.Counter("engine.queries.ref-gcov").Add(3)
	r.Counter("cost.misestimate").Add(7)
	r.Counter("viewcache.hit").Add(9)
	r.Counter("viewcache.miss").Add(4)
	r.Counter("plancache.hit").Add(6)
	r.Gauge("viewcache.bytes").Set(2048)
	r.Gauge("exec.parallel_workers_busy").Set(4)
	h := r.Histogram("engine.latency_ms.ref-gcov", 1, 10, 100)
	h.Observe(0.5)
	h.Observe(50)
	h.Observe(5000)
	r.Histogram("http.latency_ms./query", 1, 10).Observe(3)
	return r
}

// promParse validates the exposition format line by line and returns the
// sample values keyed by "name{labels}".
func promParse(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line: %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample without value: %q", line)
		}
		key, valText := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			name = key[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q precedes its # TYPE line", line)
		}
		for _, r := range name {
			if r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
				continue
			}
			t.Fatalf("invalid metric name char %q in %q", r, line)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	samples := promParse(t, sb.String())
	want := map[string]float64{
		`engine_queries_total`:                                    5,
		`engine_queries_total{strategy="sat"}`:                    2,
		`engine_queries_total{strategy="ref-gcov"}`:               3,
		`cost_misestimate_total`:                                  7,
		`viewcache_total{event="hit"}`:                            9,
		`viewcache_total{event="miss"}`:                           4,
		`plancache_total{event="hit"}`:                            6,
		`viewcache{event="bytes"}`:                                2048,
		`exec_parallel_workers_busy`:                              4,
		`engine_latency_ms_count{strategy="ref-gcov"}`:            3,
		`engine_latency_ms_bucket{strategy="ref-gcov",le="1"}`:    1,
		`engine_latency_ms_bucket{strategy="ref-gcov",le="10"}`:   1,
		`engine_latency_ms_bucket{strategy="ref-gcov",le="100"}`:  2,
		`engine_latency_ms_bucket{strategy="ref-gcov",le="+Inf"}`: 3,
		`http_latency_ms_count{path="/query"}`:                    1,
		`http_latency_ms_bucket{path="/query",le="+Inf"}`:         1,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing sample %s\n%s", k, sb.String())
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	if got := samples[`engine_latency_ms_sum{strategy="ref-gcov"}`]; got != 5050.5 {
		t.Errorf("histogram sum = %v, want 5050.5", got)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"engine.plancache.hits": "engine_plancache_hits",
		"http.requests":         "http_requests",
		"weird//name..x":        "weird_name_x",
		"9lead":                 "_lead",
		"":                      "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// Histogram snapshots must be atomic: under concurrent observers, every
// snapshot's bucket counts must sum to its total count and its sum must be
// consistent with the observed values (all observations are 1ms here, so
// sum == count). Run under -race this also pins the locking discipline.
func TestHistogramSnapshotAtomicUnderRace(t *testing.T) {
	h := NewHistogram(0.5, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(1)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var bucketTotal int64
		for _, c := range s.BucketCounts {
			bucketTotal += c
		}
		if bucketTotal != s.Count {
			t.Fatalf("torn snapshot: buckets sum to %d, count is %d", bucketTotal, s.Count)
		}
		if s.Sum != float64(s.Count) {
			t.Fatalf("torn snapshot: sum %v, count %d", s.Sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

// The full registry exposition under concurrent writes must stay
// well-formed (the writer snapshots each instrument exactly once).
func TestWritePrometheusUnderConcurrentWrites(t *testing.T) {
	r := buildTestRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Counter("engine.queries").Inc()
				r.Histogram("engine.latency_ms.ref-gcov").Observe(float64(i % 200))
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := WritePrometheus(&sb, r); err != nil {
			t.Fatal(err)
		}
		samples := promParse(t, sb.String())
		count := samples[`engine_latency_ms_count{strategy="ref-gcov"}`]
		inf := samples[`engine_latency_ms_bucket{strategy="ref-gcov",le="+Inf"}`]
		if count != inf {
			t.Fatalf("histogram count %v != +Inf bucket %v", count, inf)
		}
	}
	close(stop)
	wg.Wait()
}
