package rdf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		term Term
		kind Kind
	}{
		{NewIRI("http://x"), IRI},
		{NewLiteral("abc"), Literal},
		{NewLangLiteral("abc", "en"), Literal},
		{NewTypedLiteral("1", XSDInteger), Literal},
		{NewBlank("b0"), Blank},
	}
	for _, c := range cases {
		if c.term.Kind != c.kind {
			t.Errorf("%v: want kind %v, got %v", c.term, c.kind, c.term.Kind)
		}
		if !c.term.Valid() {
			t.Errorf("%v should be valid", c.term)
		}
	}
}

func TestTermValidity(t *testing.T) {
	invalid := []Term{
		{},                                       // empty IRI
		{Kind: IRI},                              // empty IRI value
		{Kind: Blank},                            // empty label
		{Kind: IRI, Value: "x", Lang: "en"},      // IRI with lang
		{Kind: Blank, Value: "b", Datatype: "x"}, // blank with datatype
		{Kind: Literal, Value: "v", Datatype: "d", Lang: "en"}, // both
		{Kind: Kind(9), Value: "v"},                            // unknown kind
	}
	for _, term := range invalid {
		if term.Valid() {
			t.Errorf("%#v should be invalid", term)
		}
	}
	if !NewLiteral("").Valid() {
		t.Error("empty literal is a valid term")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/y"), "<http://x/y>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("1", XSDInteger), `"1"^^<` + XSDInteger + ">"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// TestTermKeyInjective: distinct terms have distinct keys (the dictionary
// depends on this).
func TestTermKeyInjective(t *testing.T) {
	gen := func(r *rand.Rand) Term {
		vals := []string{"a", "b", "a\x00d", "http://x", ""}
		switch r.Intn(3) {
		case 0:
			return NewIRI(vals[r.Intn(4)+0])
		case 1:
			switch r.Intn(3) {
			case 0:
				return NewLiteral(vals[r.Intn(len(vals))])
			case 1:
				return NewLangLiteral(vals[r.Intn(len(vals))], []string{"en", "fr"}[r.Intn(2)])
			default:
				return NewTypedLiteral(vals[r.Intn(len(vals))], vals[r.Intn(4)])
			}
		default:
			return NewBlank(vals[r.Intn(4)])
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		if a == b {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Key must also distinguish the tricky datatype/lang boundary cases.
func TestTermKeyBoundary(t *testing.T) {
	a := NewTypedLiteral("v", "x")
	b := NewLangLiteral("v", "x")
	if a.Key() == b.Key() {
		t.Fatal("typed and lang literal keys collide")
	}
	c := NewLiteral("v\x00dx")
	if a.Key() == c.Key() {
		t.Fatal("escape collision in keys")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	terms := []Term{
		NewIRI("a"), NewIRI("b"),
		NewLiteral("a"), NewLangLiteral("a", "en"), NewTypedLiteral("a", "dt"),
		NewBlank("a"), NewBlank("b"),
	}
	for i, a := range terms {
		if a.Compare(a) != 0 {
			t.Errorf("%v not equal to itself", a)
		}
		for j, b := range terms {
			c1, c2 := a.Compare(b), b.Compare(a)
			if c1 != -c2 {
				t.Errorf("compare(%v,%v)=%d but reverse=%d", a, b, c1, c2)
			}
			if (i == j) != (c1 == 0) {
				t.Errorf("compare(%v,%v)=%d, want equality iff same", a, b, c1)
			}
		}
	}
}

func TestTripleWellFormed(t *testing.T) {
	iri := NewIRI("http://x")
	lit := NewLiteral("v")
	blank := NewBlank("b")
	cases := []struct {
		tr   Triple
		want bool
	}{
		{NewTriple(iri, iri, iri), true},
		{NewTriple(iri, iri, lit), true},
		{NewTriple(blank, iri, blank), true},
		{NewTriple(lit, iri, iri), false},   // literal subject
		{NewTriple(iri, lit, iri), false},   // literal predicate
		{NewTriple(iri, blank, iri), false}, // blank predicate
		{NewTriple(Term{}, iri, iri), false},
	}
	for _, c := range cases {
		if got := c.tr.WellFormed(); got != c.want {
			t.Errorf("WellFormed(%v) = %v, want %v", c.tr, got, c.want)
		}
	}
}

func TestDedupTriples(t *testing.T) {
	a := NewTriple(NewIRI("s"), NewIRI("p"), NewIRI("o"))
	b := NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	got := DedupTriples([]Triple{a, b, a, a, b})
	if len(got) != 2 {
		t.Fatalf("want 2 distinct triples, got %d", len(got))
	}
	if got[0].Compare(got[1]) >= 0 {
		t.Fatal("result not sorted")
	}
}

func TestVal(t *testing.T) {
	s, p := NewIRI("s"), NewIRI("p")
	o1, o2 := NewLiteral("x"), NewBlank("b")
	vals := Val([]Triple{NewTriple(s, p, o1), NewTriple(s, p, o2)})
	if len(vals) != 4 {
		t.Fatalf("want 4 values, got %d: %v", len(vals), vals)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1].Compare(vals[i]) >= 0 {
			t.Fatal("Val not sorted")
		}
	}
}

func TestIsSchemaTriple(t *testing.T) {
	s := NewIRI("s")
	if !IsSchemaTriple(NewTriple(s, SubClassOf, NewIRI("c"))) {
		t.Error("subClassOf should be a schema triple")
	}
	if IsSchemaTriple(NewTriple(s, Type, NewIRI("c"))) {
		t.Error("rdf:type alone is not a schema triple")
	}
	if IsSchemaTriple(NewTriple(s, NewIRI("p"), NewIRI("o"))) {
		t.Error("plain property is not a schema triple")
	}
}

func TestFormatTriples(t *testing.T) {
	tr := NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	out := FormatTriples([]Triple{tr, tr})
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("want 2 lines, got %q", out)
	}
	if !strings.Contains(out, `<s> <p> "o" .`) {
		t.Fatalf("unexpected rendering: %q", out)
	}
}

func TestKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || Blank.String() != "Blank" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Fatal("unknown kind should include number")
	}
}

func TestSortTriplesDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ts []Triple
		for i := 0; i < 10; i++ {
			ts = append(ts, NewTriple(
				NewIRI(string(rune('a'+r.Intn(3)))),
				NewIRI(string(rune('p'+r.Intn(2)))),
				NewLiteral(string(rune('x'+r.Intn(3))))))
		}
		a := append([]Triple(nil), ts...)
		b := append([]Triple(nil), ts...)
		rand.New(rand.NewSource(seed+1)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		SortTriples(a)
		SortTriples(b)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() || NewIRI("x").IsBlank() {
		t.Fatal("IRI predicates wrong")
	}
	if !NewLiteral("v").IsLiteral() || !NewBlank("b").IsBlank() {
		t.Fatal("literal/blank predicates wrong")
	}
}
