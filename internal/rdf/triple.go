package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is one RDF statement: subject s has property p with value o.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// WellFormed reports whether the triple respects the W3C grammar: the
// subject is an IRI or blank node, the property is an IRI, and the object is
// any term; all three must be individually valid.
func (t Triple) WellFormed() bool {
	if !t.S.Valid() || !t.P.Valid() || !t.O.Valid() {
		return false
	}
	if t.S.Kind == Literal {
		return false
	}
	return t.P.Kind == IRI
}

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Compare orders triples lexicographically by (S, P, O).
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// SortTriples orders a slice of triples deterministically, in place.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// DedupTriples sorts ts and removes duplicates, returning the shortened
// slice (set semantics: an RDF graph is a *set* of triples).
func DedupTriples(ts []Triple) []Triple {
	if len(ts) < 2 {
		return ts
	}
	SortTriples(ts)
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Val returns Val(G): the set of values (IRIs, blank nodes and literals)
// occurring in the given triples, in deterministic order.
func Val(ts []Triple) []Term {
	seen := make(map[string]Term, len(ts))
	for _, t := range ts {
		seen[t.S.Key()] = t.S
		seen[t.P.Key()] = t.P
		seen[t.O.Key()] = t.O
	}
	out := make([]Term, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// FormatTriples renders triples one per line in N-Triples syntax.
func FormatTriples(ts []Triple) string {
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
