package rdf

// Well-known namespaces and the vocabulary the database fragment of RDF
// relies on (Figure 1 of the paper): rdf:type for class assertions, and the
// four RDFS constraint properties.
const (
	// RDFNS is the rdf: namespace prefix IRI.
	RDFNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// RDFSNS is the rdfs: namespace prefix IRI.
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	// XSDNS is the xsd: namespace prefix IRI.
	XSDNS = "http://www.w3.org/2001/XMLSchema#"

	// TypeIRI is rdf:type, used in class assertions "s rdf:type o".
	TypeIRI = RDFNS + "type"
	// SubClassOfIRI is rdfs:subClassOf (s ⊑sc o under OWA).
	SubClassOfIRI = RDFSNS + "subClassOf"
	// SubPropertyOfIRI is rdfs:subPropertyOf (s ⊑sp o).
	SubPropertyOfIRI = RDFSNS + "subPropertyOf"
	// DomainIRI is rdfs:domain (Π_domain(s) ⊆ o).
	DomainIRI = RDFSNS + "domain"
	// RangeIRI is rdfs:range (Π_range(s) ⊆ o).
	RangeIRI = RDFSNS + "range"
	// ClassIRI is rdfs:Class.
	ClassIRI = RDFSNS + "Class"
	// PropertyIRI is rdf:Property.
	PropertyIRI = RDFNS + "Property"
	// LabelIRI is rdfs:label.
	LabelIRI = RDFSNS + "label"
	// XSDString is xsd:string.
	XSDString = XSDNS + "string"
	// XSDInteger is xsd:integer.
	XSDInteger = XSDNS + "integer"
)

// Pre-built terms for the built-in vocabulary.
var (
	Type          = NewIRI(TypeIRI)
	SubClassOf    = NewIRI(SubClassOfIRI)
	SubPropertyOf = NewIRI(SubPropertyOfIRI)
	Domain        = NewIRI(DomainIRI)
	Range         = NewIRI(RangeIRI)
)

// IsSchemaProperty reports whether the IRI is one of the four RDFS
// constraint properties of Figure 1 (bottom).
func IsSchemaProperty(iri string) bool {
	switch iri {
	case SubClassOfIRI, SubPropertyOfIRI, DomainIRI, RangeIRI:
		return true
	}
	return false
}

// IsSchemaTriple reports whether the triple declares an RDFS constraint.
func IsSchemaTriple(t Triple) bool {
	return t.P.Kind == IRI && IsSchemaProperty(t.P.Value)
}

// WellKnownPrefixes maps conventional prefixes to their namespace IRIs; the
// parsers and formatters use it as the default prefix table.
var WellKnownPrefixes = map[string]string{
	"rdf":  RDFNS,
	"rdfs": RDFSNS,
	"xsd":  XSDNS,
}
