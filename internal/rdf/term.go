// Package rdf defines the RDF data model used throughout the repository:
// terms (IRIs, literals, blank nodes), triples, and the well-known RDF and
// RDFS vocabulary. It corresponds to the "RDF Graphs" preliminaries of the
// paper (§3): a graph is a set of well-formed triples s p o whose values are
// drawn from IRIs (U), blank nodes (B) and literals (L).
package rdf

import (
	"fmt"
	"strings"
)

// Kind discriminates the three families of RDF values.
type Kind uint8

const (
	// IRI is an internationalized resource identifier (the W3C spec's URI
	// generalisation); subjects, properties and objects may be IRIs.
	IRI Kind = iota
	// Literal is a (possibly typed or language-tagged) constant; literals
	// may only appear in object position of well-formed triples.
	Literal
	// Blank is a blank node, a form of incomplete information standing for
	// an unknown IRI or literal; blank nodes may appear as subject or
	// object.
	Blank
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Term is one RDF value. The zero Term is not valid; construct terms with
// NewIRI, NewLiteral, NewLangLiteral, NewTypedLiteral or NewBlank.
type Term struct {
	// Kind tells whether the term is an IRI, a literal or a blank node.
	Kind Kind
	// Value holds the IRI string, the literal's lexical form, or the blank
	// node label (without the "_:" prefix).
	Value string
	// Datatype is the datatype IRI for typed literals, empty otherwise.
	Datatype string
	// Lang is the language tag for language-tagged literals, empty
	// otherwise.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain (untyped, untagged) literal term.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewBlank returns a blank node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// Valid reports whether the term is well-formed: non-empty IRI or blank
// label, and no simultaneous datatype and language tag.
func (t Term) Valid() bool {
	switch t.Kind {
	case IRI, Blank:
		return t.Value != "" && t.Datatype == "" && t.Lang == ""
	case Literal:
		return !(t.Datatype != "" && t.Lang != "")
	default:
		return false
	}
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return fmt.Sprintf("?!invalid-term(%d)", uint8(t.Kind))
	}
}

// Key returns a compact unique string identifying the term, suitable as a
// map key in dictionaries. Unlike String it avoids quoting overhead.
func (t Term) Key() string {
	var sb strings.Builder
	sb.Grow(len(t.Value) + len(t.Datatype) + len(t.Lang) + 10)
	switch t.Kind {
	case IRI:
		sb.WriteByte('I')
	case Literal:
		sb.WriteByte('L')
	case Blank:
		sb.WriteByte('B')
	}
	// Length-prefix the lexical value so a value containing separator
	// bytes can never collide with the datatype/language fields.
	fmt.Fprintf(&sb, "%d;", len(t.Value))
	sb.WriteString(t.Value)
	sb.WriteByte('\x00')
	sb.WriteString(t.Datatype)
	sb.WriteByte('\x00')
	sb.WriteString(t.Lang)
	return sb.String()
}

// Compare orders terms first by kind, then by value, datatype and language;
// it returns -1, 0 or +1. The order is arbitrary but total, and is used to
// produce deterministic output.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
