package cost

import (
	"repro/internal/query"
	"repro/internal/storage"
)

// This file prices range CQs (the ref-range reformulation) so the planner
// can compare ref-range against the UCQ/SCQ/JUCQ/GCov strategies. Range
// atoms are materialized and hash-joined by the executor (no nested-loop
// probing into a range pattern), so the simulation mirrors JoinFragments;
// expansions multiply cardinality by the average hierarchy fan-out.

// rangePatternOf converts a range atom to the storage pattern its scan
// runs: constants become exact ranges, range positions keep their ranges,
// variables are wildcards.
func rangePatternOf(a query.RangeAtom) storage.RangePattern {
	var pat storage.RangePattern
	conv := func(ra query.RangeArg) []storage.IDRange {
		switch {
		case ra.Ranges != nil:
			return ra.Ranges
		case !ra.Arg.IsVar():
			return []storage.IDRange{storage.Exact(ra.Arg.ID)}
		}
		return nil
	}
	pat.S, pat.P, pat.O = conv(a.S), conv(a.P), conv(a.O)
	return pat
}

// relaxedPattern drops range constraints down to the exact-only Pattern the
// per-variable distinct statistics understand.
func relaxedPattern(a query.RangeAtom) storage.Pattern {
	var pat storage.Pattern
	set := func(ra query.RangeArg, dst *storage.Pattern, pos byte) {
		if ra.Ranges == nil && !ra.Arg.IsVar() {
			switch pos {
			case 's':
				dst.S = ra.Arg.ID
			case 'p':
				dst.P = ra.Arg.ID
			default:
				dst.O = ra.Arg.ID
			}
		}
	}
	set(a.S, &pat, 's')
	set(a.P, &pat, 'p')
	set(a.O, &pat, 'o')
	return pat
}

// expansionFanout returns the average number of output bindings an
// expansion emits per input row (1 for reflexivity plus the mean table
// fan-out).
func expansionFanout(e *query.Expansion) float64 {
	fan := 0.0
	if e.Reflexive {
		fan = 1
	}
	if len(e.Table) == 0 {
		return maxF(fan, 1)
	}
	total := 0
	for _, v := range e.Table {
		total += len(v)
	}
	return maxF(fan+float64(total)/float64(len(e.Table)), 1)
}

// RangeAtom estimates one range-atom scan: exact range-pattern count for
// the cardinality, per-variable distinct counts from the relaxed pattern
// (capped by the cardinality).
func (m *Model) RangeAtom(a query.RangeAtom) Estimate {
	card := m.st.RangeCard(rangePatternOf(a))
	est := Estimate{Cost: CScan * card, Card: card, V: map[string]float64{}}
	relaxed := relaxedPattern(a)
	for i, ra := range [3]query.RangeArg{a.S, a.P, a.O} {
		if !ra.Arg.IsVar() {
			continue
		}
		pos := [3]byte{'s', 'p', 'o'}[i]
		v := m.st.DistinctVar(relaxed, pos)
		if v > card {
			v = maxF(card, 1)
		}
		if old, ok := est.V[ra.Arg.Var]; !ok || v < old {
			est.V[ra.Arg.Var] = v
		}
	}
	return est
}

// RangeCQ estimates one range CQ, simulating the executor's plan: scan
// every atom, greedy hash joins (connected first, then smallest), then the
// expansion fan-outs.
func (m *Model) RangeCQ(q query.RangeCQ) Estimate {
	if len(q.Atoms) == 0 {
		return Estimate{}
	}
	ests := make([]Estimate, len(q.Atoms))
	total := 0.0
	for i, a := range q.Atoms {
		ests[i] = m.RangeAtom(a)
		total += ests[i].Cost
	}
	cur := ests[0]
	rest := append([]Estimate(nil), ests[1:]...)
	for len(rest) > 0 {
		best, bestConnected := -1, false
		for i, f := range rest {
			connected := sharesVar(f.V, cur.V)
			switch {
			case best == -1,
				connected && !bestConnected,
				connected == bestConnected && f.Card < rest[best].Card:
				best, bestConnected = i, connected
			}
		}
		next := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		out := joinEstimate(cur, next)
		total += CBuild*minF(cur.Card, next.Card) + CScan*maxF(cur.Card, next.Card) + COut*out.Card
		cur = out
	}
	for _, a := range q.Atoms {
		if a.Expand == nil {
			continue
		}
		fan := expansionFanout(a.Expand)
		cur.Card *= fan
		total += COut * cur.Card
		if a.Expand.Out.IsVar() {
			cur.V[a.Expand.Out.Var] = maxF(minF(float64(len(a.Expand.Table)), cur.Card), 1)
		}
	}
	cur.Cost = total
	return cur
}

// RangeUCQ estimates a union of range CQs: costs and cardinalities add up,
// as in UCQ.
func (m *Model) RangeUCQ(u query.RangeUCQ) Estimate {
	out := Estimate{V: map[string]float64{}}
	for _, cq := range u.CQs {
		e := m.RangeCQ(cq)
		out.Cost += e.Cost
		out.Card += e.Card
		for v, n := range e.V {
			out.V[v] += n
		}
	}
	for v := range out.V {
		if out.V[v] > out.Card {
			out.V[v] = out.Card
		}
	}
	return out
}
