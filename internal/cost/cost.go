// Package cost implements the cost estimation function c of the paper (§4):
// given a JUCQ (or CQ/UCQ), it returns the estimated cost of evaluating it
// through the store, computed from database-textbook formulas over the
// collected statistics (scan extents, hash-join build/probe costs, and
// join output cardinalities under the independence and containment-of-value
// assumptions). GCov searches the cover space with this function.
package cost

import (
	"repro/internal/query"
	"repro/internal/stats"
)

// Weights of the cost components. The absolute scale is irrelevant (GCov
// only compares costs); the ratios mirror a main-memory RDBMS: probing an
// index costs a few comparisons, scanning and materializing a tuple costs
// one unit, hashing a build tuple costs about two.
const (
	CScan  = 1.0 // per tuple scanned and materialized
	CProbe = 6.0 // per index lookup in a nested-loop join
	CBuild = 2.0 // per tuple inserted in a hash table
	COut   = 1.0 // per tuple produced by a join
)

// Estimate describes one (sub)query: estimated evaluation cost, output
// cardinality, and per-variable distinct-value counts (the V(R, a) of the
// textbook formulas).
type Estimate struct {
	Cost float64
	Card float64
	V    map[string]float64
}

// Model estimates evaluation costs from statistics.
type Model struct {
	st *stats.Stats
	// shards is the scan parallelism a sharded store offers: scatter
	// scans run on all shards concurrently, so their wall-clock cost
	// scales by 1/shards. Cardinalities are unaffected — the partition
	// changes where tuples live, not how many match.
	shards int
}

// NewModel returns a cost model over the statistics.
func NewModel(st *stats.Stats) *Model { return &Model{st: st, shards: 1} }

// SetShards declares the store's partition count so scan estimates scale
// by 1/n (n < 1 is treated as unsharded).
func (m *Model) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	m.shards = n
}

// Shards returns the declared partition count.
func (m *Model) Shards() int { return m.shards }

// scanCost prices scanning card tuples, spread across the shards.
func (m *Model) scanCost(card float64) float64 {
	return CScan * card / float64(m.shards)
}

// Atom estimates a single triple-pattern scan.
func (m *Model) Atom(a query.Atom) Estimate {
	pat := a.Pattern()
	card := m.st.PatternCard(pat)
	est := Estimate{Cost: m.scanCost(card), Card: card, V: map[string]float64{}}
	for i, arg := range [3]query.Arg{a.S, a.P, a.O} {
		if !arg.IsVar() {
			continue
		}
		pos := [3]byte{'s', 'p', 'o'}[i]
		v := m.st.DistinctVar(pat, pos)
		if old, ok := est.V[arg.Var]; !ok || v < old {
			est.V[arg.Var] = v
		}
	}
	return est
}

// CQ estimates a conjunctive query, simulating the executor's greedy plan:
// start from the most selective atom, then join connected atoms first,
// choosing index-nested-loop when the running result is small relative to
// the next atom's extent (the executor's own policy) and hash join
// otherwise.
func (m *Model) CQ(q query.CQ) Estimate {
	return m.cq(q, nil)
}

// PlanStep is one step of the simulated greedy plan: the first step is
// always a scan, each later step joins one more atom into the running
// result.
type PlanStep struct {
	// Op is "scan" for the first step, then "inlj" or "hash".
	Op string
	// AtomIndex indexes q.Atoms.
	AtomIndex int
	// Atom is the joined atom's own estimate.
	Atom Estimate
	// Out is the running estimate after this step.
	Out Estimate
}

// CQPlan is CQ exposing the simulated plan steps — the estimate tree
// EXPLAIN renders next to the executor's actual operator spans.
func (m *Model) CQPlan(q query.CQ) (Estimate, []PlanStep) {
	var steps []PlanStep
	est := m.cq(q, func(s PlanStep) { steps = append(steps, s) })
	return est, steps
}

// cq is the shared core; emit (when non-nil) receives one PlanStep per
// operator so CQ stays allocation-free on the GCov hot path.
func (m *Model) cq(q query.CQ, emit func(PlanStep)) Estimate {
	atoms := q.Atoms
	if len(atoms) == 0 {
		return Estimate{}
	}
	ests := make([]Estimate, len(atoms))
	for i, a := range atoms {
		ests[i] = m.Atom(a)
	}
	remaining := make([]int, len(atoms))
	for i := range remaining {
		remaining[i] = i
	}
	start := 0
	for i := range remaining {
		if ests[remaining[i]].Card < ests[remaining[start]].Card {
			start = i
		}
	}
	first := remaining[start]
	cur := ests[first]
	cur.Cost = m.scanCost(cur.Card)
	remaining = append(remaining[:start], remaining[start+1:]...)
	total := cur.Cost
	if emit != nil {
		emit(PlanStep{Op: "scan", AtomIndex: first, Atom: ests[first], Out: cur})
	}
	for len(remaining) > 0 {
		best, bestConnected := -1, false
		for i, ai := range remaining {
			connected := sharesVar(ests[ai].V, cur.V)
			switch {
			case best == -1,
				connected && !bestConnected,
				connected == bestConnected && ests[ai].Card < ests[remaining[best]].Card:
				best, bestConnected = i, connected
			}
		}
		ai := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		next := ests[ai]
		out := joinEstimate(cur, next)
		op := "hash"
		if bestConnected && preferINLJ(cur.Card, next.Card) {
			total += CProbe*cur.Card + COut*out.Card
			op = "inlj"
		} else {
			total += m.scanCost(next.Card) + CBuild*minF(cur.Card, next.Card) + COut*out.Card
		}
		cur = out
		if emit != nil {
			emit(PlanStep{Op: op, AtomIndex: ai, Atom: next, Out: cur})
		}
	}
	cur.Cost = total
	return cur
}

// preferINLJ mirrors exec.Evaluator's choice so estimates track the actual
// plans.
func preferINLJ(curRows, extent float64) bool {
	return curRows*8 < extent || curRows <= 64
}

// UCQ estimates a union: costs and cardinalities add up (set-semantics
// dedup can only shrink the result; the upper bound keeps the model
// simple and monotone).
func (m *Model) UCQ(u query.UCQ) Estimate {
	out := Estimate{V: map[string]float64{}}
	for _, cq := range u.CQs {
		e := m.CQ(cq)
		out.Cost += e.Cost
		out.Card += e.Card
		for v, n := range e.V {
			out.V[v] += n
		}
	}
	for v := range out.V {
		if out.V[v] > out.Card {
			out.V[v] = out.Card
		}
	}
	return out
}

// JUCQ estimates a join of fragment UCQs: per-fragment costs plus a greedy
// hash-join simulation over the fragment results (fragment relations are
// materialized, so nested-loop probing is not available to them).
func (m *Model) JUCQ(j query.JUCQ) Estimate {
	if len(j.Fragments) == 0 {
		return Estimate{}
	}
	frags := make([]Estimate, len(j.Fragments))
	for i, f := range j.Fragments {
		frags[i] = m.UCQ(f.UCQ)
	}
	return m.JoinFragments(frags)
}

// JoinFragments combines precomputed fragment estimates into the JUCQ
// estimate; GCov uses it to re-price candidate covers without
// re-estimating cached fragments.
func (m *Model) JoinFragments(frags []Estimate) Estimate {
	if len(frags) == 0 {
		return Estimate{}
	}
	frags = append([]Estimate(nil), frags...)
	total := 0.0
	for _, f := range frags {
		total += f.Cost
	}
	cur := frags[0]
	rest := frags[1:]
	for len(rest) > 0 {
		best, bestConnected := -1, false
		for i, f := range rest {
			connected := sharesVar(f.V, cur.V)
			switch {
			case best == -1,
				connected && !bestConnected,
				connected == bestConnected && f.Card < rest[best].Card:
				best, bestConnected = i, connected
			}
		}
		next := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		out := joinEstimate(cur, next)
		total += CBuild*minF(cur.Card, next.Card) + CScan*maxF(cur.Card, next.Card) + COut*out.Card
		cur = out
	}
	cur.Cost = total
	return cur
}

// Join applies the textbook join-size formula to two sub-estimates — the
// executor uses it to carry a running estimated cardinality alongside each
// actual operator result when tracing is on.
func Join(a, b Estimate) Estimate { return joinEstimate(a, b) }

// joinEstimate applies the textbook join-size formula:
// |A ⋈ B| = |A|·|B| / Π_v max(V(A,v), V(B,v)) over shared variables v.
func joinEstimate(a, b Estimate) Estimate {
	card := a.Card * b.Card
	for v, va := range a.V {
		if vb, ok := b.V[v]; ok {
			card /= maxF(maxF(va, vb), 1)
		}
	}
	out := Estimate{Card: card, V: map[string]float64{}}
	for v, va := range a.V {
		out.V[v] = va
		if vb, ok := b.V[v]; ok && vb < va {
			out.V[v] = vb
		}
	}
	for v, vb := range b.V {
		if _, ok := out.V[v]; !ok {
			out.V[v] = vb
		}
	}
	for v := range out.V {
		if out.V[v] > out.Card {
			out.V[v] = maxF(out.Card, 1)
		}
	}
	return out
}

func sharesVar(a, b map[string]float64) bool {
	for v := range a {
		if _, ok := b[v]; ok {
			return true
		}
	}
	return false
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
