package cost

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/storage"
)

func buildModel(triples [][3]dict.ID) *Model {
	ts := make([]dict.Triple, len(triples))
	for i, t := range triples {
		ts[i] = dict.Triple{S: t[0], P: t[1], O: t[2]}
	}
	st := storage.Build(dict.New(), ts)
	return NewModel(stats.Collect(st))
}

func v(n string) query.Arg   { return query.Variable(n) }
func c(id dict.ID) query.Arg { return query.Constant(id) }

func TestAtomEstimate(t *testing.T) {
	m := buildModel([][3]dict.ID{
		{1, 10, 100}, {2, 10, 100}, {3, 10, 101}, {4, 11, 100},
	})
	e := m.Atom(query.Atom{S: v("x"), P: c(10), O: v("y")})
	if e.Card != 3 {
		t.Fatalf("card = %v, want 3", e.Card)
	}
	if e.V["x"] != 3 || e.V["y"] != 2 {
		t.Fatalf("V = %v", e.V)
	}
	if e.Cost != CScan*3 {
		t.Fatalf("cost = %v", e.Cost)
	}
}

func TestAtomRepeatedVarTakesMin(t *testing.T) {
	m := buildModel([][3]dict.ID{{1, 10, 100}, {2, 10, 100}})
	e := m.Atom(query.Atom{S: v("x"), P: c(10), O: v("x")})
	// x appears in s (V=2) and o (V=1): min wins.
	if e.V["x"] != 1 {
		t.Fatalf("V[x] = %v, want 1", e.V["x"])
	}
}

func TestCQEstimateJoinShrinks(t *testing.T) {
	m := buildModel([][3]dict.ID{
		{1, 10, 2}, {3, 10, 4}, {5, 10, 6},
		{2, 11, 7}, {4, 11, 8},
	})
	q := query.CQ{
		Head: []query.Arg{v("x")},
		Atoms: []query.Atom{
			{S: v("x"), P: c(10), O: v("y")},
			{S: v("y"), P: c(11), O: v("z")},
		},
	}
	e := m.CQ(q)
	// |A|=3, |B|=2, shared y with V(A,y)=3, V(B,y)=2 → 3·2/3 = 2.
	if e.Card != 2 {
		t.Fatalf("join card = %v, want 2", e.Card)
	}
	if e.Cost <= 0 {
		t.Fatalf("cost must be positive, got %v", e.Cost)
	}
}

func TestUCQEstimateAdds(t *testing.T) {
	m := buildModel([][3]dict.ID{{1, 10, 2}, {3, 11, 4}})
	u := query.UCQ{HeadNames: []string{"x"}, CQs: []query.CQ{
		{Head: []query.Arg{v("x")}, Atoms: []query.Atom{{S: v("x"), P: c(10), O: v("y")}}},
		{Head: []query.Arg{v("x")}, Atoms: []query.Atom{{S: v("x"), P: c(11), O: v("y")}}},
	}}
	e := m.UCQ(u)
	if e.Card != 2 {
		t.Fatalf("union card = %v, want 2", e.Card)
	}
	single := m.CQ(u.CQs[0])
	if e.Cost <= single.Cost {
		t.Fatal("union must cost more than one member")
	}
}

func TestJUCQEstimate(t *testing.T) {
	m := buildModel([][3]dict.ID{
		{1, 10, 2}, {2, 11, 3}, {4, 10, 5}, {5, 11, 6},
	})
	mkFrag := func(p dict.ID, a, b string) query.Fragment {
		return query.Fragment{UCQ: query.UCQ{HeadNames: []string{a, b}, CQs: []query.CQ{
			{Head: []query.Arg{v(a), v(b)}, Atoms: []query.Atom{{S: v(a), P: c(p), O: v(b)}}},
		}}}
	}
	j := query.JUCQ{
		HeadNames: []string{"x", "z"},
		Fragments: []query.Fragment{mkFrag(10, "x", "y"), mkFrag(11, "y", "z")},
	}
	e := m.JUCQ(j)
	if e.Card <= 0 || e.Cost <= 0 {
		t.Fatalf("estimate degenerate: %+v", e)
	}
	// Joining on y: 2·2/2 = 2.
	if e.Card != 2 {
		t.Fatalf("JUCQ card = %v, want 2", e.Card)
	}
}

func TestJoinEstimateNoSharedVars(t *testing.T) {
	a := Estimate{Card: 3, V: map[string]float64{"x": 3}}
	b := Estimate{Card: 4, V: map[string]float64{"y": 2}}
	out := joinEstimate(a, b)
	if out.Card != 12 {
		t.Fatalf("cross product card = %v, want 12", out.Card)
	}
	if out.V["x"] != 3 || out.V["y"] != 2 {
		t.Fatalf("V propagation wrong: %v", out.V)
	}
}

func TestJoinEstimateCapsV(t *testing.T) {
	a := Estimate{Card: 2, V: map[string]float64{"x": 2, "y": 2}}
	b := Estimate{Card: 1, V: map[string]float64{"y": 1}}
	out := joinEstimate(a, b)
	for varName, val := range out.V {
		if val > out.Card && out.Card >= 1 {
			t.Fatalf("V[%s]=%v exceeds card %v", varName, val, out.Card)
		}
	}
}

func TestEmptyCQ(t *testing.T) {
	m := buildModel(nil)
	e := m.CQ(query.CQ{})
	if e.Card != 0 || e.Cost != 0 {
		t.Fatalf("empty CQ estimate: %+v", e)
	}
	if got := m.JUCQ(query.JUCQ{}); got.Cost != 0 {
		t.Fatalf("empty JUCQ: %+v", got)
	}
}

// The model must rank the paper-style covers correctly: grouping a huge
// unselective atom with a selective one must beat evaluating it alone.
func TestModelPrefersSelectiveGrouping(t *testing.T) {
	// Property 10 is huge (60 triples), property 11 selective (2).
	var ts [][3]dict.ID
	for i := dict.ID(1); i <= 60; i++ {
		ts = append(ts, [3]dict.ID{i, 10, 500})
	}
	ts = append(ts, [3]dict.ID{1, 11, 600}, [3]dict.ID{2, 11, 601})
	m := buildModel(ts)

	big := query.CQ{Head: []query.Arg{v("x")}, Atoms: []query.Atom{{S: v("x"), P: c(10), O: v("y")}}}
	sel := query.CQ{Head: []query.Arg{v("x")}, Atoms: []query.Atom{{S: v("x"), P: c(11), O: v("z")}}}
	grouped := query.CQ{Head: []query.Arg{v("x")}, Atoms: append(append([]query.Atom(nil), big.Atoms...), sel.Atoms...)}

	scqLike := query.JUCQ{HeadNames: []string{"x"}, Fragments: []query.Fragment{
		{UCQ: query.UCQ{HeadNames: []string{"x"}, CQs: []query.CQ{big}}},
		{UCQ: query.UCQ{HeadNames: []string{"x"}, CQs: []query.CQ{sel}}},
	}}
	groupedJUCQ := query.JUCQ{HeadNames: []string{"x"}, Fragments: []query.Fragment{
		{UCQ: query.UCQ{HeadNames: []string{"x"}, CQs: []query.CQ{grouped}}},
	}}
	if m.JUCQ(groupedJUCQ).Cost >= m.JUCQ(scqLike).Cost {
		t.Fatalf("grouped cover must be estimated cheaper: grouped=%v scq=%v",
			m.JUCQ(groupedJUCQ).Cost, m.JUCQ(scqLike).Cost)
	}
}
