// Endpoints: the §1 motivation for reformulation. Semantic Web data is
// split across independent RDF endpoints; a fact can live in one source and
// the constraint that gives it meaning in another, and sources cannot be
// (re)saturated — no write access, and the closure of the union is not
// computable source by source. The federation mediator fetches the
// explicit triples, merges them, and reformulates queries locally.
// (Against live endpoints, swap LocalSource for federation.HTTPSource
// pointed at a refserve /dump URL.)
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/engine"
	"repro/internal/federation"
	"repro/internal/ntriples"
	"repro/internal/query"
)

// Endpoint 1: a bibliographic dataset that publishes plain facts, no
// schema, not saturated.
const endpointBooks = `
@prefix ex: <http://example.org/> .
ex:doi1 ex:writtenBy ex:borges .
ex:doi2 ex:writtenBy ex:cortazar .
ex:doi2 ex:hasTitle "Rayuela" .
`

// Endpoint 2: a curated authority that publishes the ontology — and a few
// of its own facts.
const endpointOntology = `
@prefix ex: <http://example.org/> .
ex:Book      rdfs:subClassOf    ex:Publication .
ex:Novel     rdfs:subClassOf    ex:Book .
ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
ex:writtenBy rdfs:domain        ex:Book .
ex:writtenBy rdfs:range         ex:Writer .
ex:Writer    rdfs:subClassOf    ex:Person .
ex:doi2 a ex:Novel .
`

func main() {
	books, err := ntriples.ParseString(endpointBooks)
	if err != nil {
		log.Fatal(err)
	}
	onto, err := ntriples.ParseString(endpointOntology)
	if err != nil {
		log.Fatal(err)
	}
	med := federation.NewMediator(
		&federation.LocalSource{SourceName: "books-endpoint", Triples: books},
		&federation.LocalSource{SourceName: "ontology-endpoint", Triples: onto},
	)
	e, err := med.Engine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated %d sources (%v): %d merged data triples, %s\n\n",
		len(med.PerSource), med.PerSource, e.Graph().DataCount(), e.Graph().Schema())

	prefixes := map[string]string{"ex": "http://example.org/"}
	queries := []struct{ label, text string }{
		{"publications", `q(x) :- x rdf:type ex:Publication`},
		{"persons", `q(x) :- x rdf:type ex:Person`},
		{"authorship", `q(x, a) :- x ex:hasAuthor a`},
	}
	for _, item := range queries {
		q, err := query.ParseRuleWithPrefixes(e.Graph().Dict(), prefixes, item.text)
		if err != nil {
			log.Fatal(err)
		}
		ans, err := e.Answer(q, engine.RefGCov)
		if err != nil {
			log.Fatal(err)
		}
		var vals []string
		d := e.Graph().Dict()
		for i := 0; i < ans.Rows.Len(); i++ {
			var parts []string
			for _, id := range ans.Rows.Row(i) {
				parts = append(parts, d.Decode(id).String())
			}
			vals = append(vals, strings.Join(parts, " / "))
		}
		fmt.Printf("%-12s (%d): %s\n", item.label, ans.Rows.Len(), strings.Join(vals, ", "))
	}

	// What Sat would have required: materializing the closure of the
	// merged graph — impossible to push back to the read-only endpoints,
	// and invalidated every time either source changes.
	sat := e.Saturation()
	fmt.Printf("\nSat would materialize %d extra triples into sources we cannot write to;\n", sat.Derived)
	fmt.Println("Ref leaves both endpoints untouched and still returns the complete answers.")
}
