// University: the paper's Example 1 (§4) end to end. Generates a LUBM
// graph, builds the 6-atom query whose UCQ reformulation explodes to
// hundreds of thousands of CQs, and compares the fixed SCQ strategy, the
// paper's hand-picked cover q” and the cost-based GCov cover.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/lubm"
)

func main() {
	fmt.Println("generating LUBM(1)…")
	db, err := repro.OpenLUBM(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d data triples, %s\n", db.TripleCount(), db.SchemaSummary())

	// Find a degree-granting university that yields answers (the paper
	// uses http://www.Univ532.edu at its 100M scale).
	univ := lubm.PickExampleOneUniversity(db.Engine().Graph())
	if univ == "" {
		log.Fatal("no university yields Example 1 answers; try another seed")
	}
	q, err := lubm.ExampleOne(db.Engine().Graph().Dict(), univ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample 1 against %s:\n  %s\n\n", univ, lubm.ExampleOneText(univ))

	type attempt struct {
		name string
		opts repro.Options
	}
	attempts := []attempt{
		{"Ref-SCQ (fixed reformulation of [15])", repro.Options{Strategy: repro.RefSCQ}},
		{"Ref-JUCQ with the paper's cover q''", repro.Options{
			Strategy: repro.RefJUCQ,
			Cover:    [][]int{{0, 2}, {2, 4}, {1, 3}, {3, 5}},
		}},
		{"Ref-GCov (cost-based cover selection)", repro.Options{Strategy: repro.RefGCov}},
		{"Sat (saturate first, then evaluate)", repro.Options{Strategy: repro.Sat}},
		{"Ref-UCQ (fixed CQ-to-UCQ of [9])", repro.Options{Strategy: repro.RefUCQ, Timeout: 2 * time.Minute}},
	}
	var baseline time.Duration
	for _, a := range attempts {
		res, err := db.AnswerCQ(q, a.opts)
		if err != nil {
			fmt.Printf("%-40s FAILED: %v\n", a.name, err)
			continue
		}
		line := fmt.Sprintf("%-40s %4d answers, %d CQs, eval %v",
			a.name, res.Len(), res.Meta.ReformulationCQs, res.Meta.EvalTime.Round(time.Microsecond))
		if a.opts.Strategy == repro.RefSCQ {
			baseline = res.Meta.EvalTime
		} else if baseline > 0 && res.Meta.EvalTime > 0 {
			ratio := float64(baseline) / float64(res.Meta.EvalTime)
			if ratio >= 1 {
				line += fmt.Sprintf("  (%.0fx faster than SCQ)", ratio)
			} else {
				line += fmt.Sprintf("  (%.0fx slower than SCQ)", 1/ratio)
			}
		}
		if res.Meta.Cover != "" && a.opts.Strategy == repro.RefGCov {
			line += "  cover " + res.Meta.Cover
		}
		fmt.Println(line)
	}
	fmt.Println("\nThe paper reports the same shape at 100M triples: the UCQ (318,096 CQs)")
	fmt.Println("could not even be parsed, the SCQ took 229s, and the best JUCQ 524ms.")
}
