// Quickstart: the paper's running example (§3, Figure 2). A small book
// graph with four RDFS constraints; the query for authors of things
// connected to "1949" has no answer over the explicit triples, but
// reformulation (like saturation) finds "J. L. Borges".
package main

import (
	"fmt"
	"log"

	"repro"
)

const data = `
@prefix ex: <http://example.org/> .

# RDF Schema constraints (Figure 2).
ex:Book      rdfs:subClassOf    ex:Publication .
ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
ex:writtenBy rdfs:domain        ex:Book .
ex:writtenBy rdfs:range         ex:Person .

# Data triples.
ex:doi1 a ex:Book ;
        ex:writtenBy _:b1 ;
        ex:hasTitle "El Aleph" ;
        ex:publishedIn "1949" .
_:b1 ex:hasName "J. L. Borges" .
`

func main() {
	db, err := repro.OpenString(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d data triples, %s\n\n", db.TripleCount(), db.SchemaSummary())

	prefixes := map[string]string{"ex": "http://example.org/"}
	queryText := `q(x3) :- x1 ex:hasAuthor x2, x2 ex:hasName x3, x1 x4 "1949"`

	for _, s := range []repro.Strategy{repro.Sat, repro.RefUCQ, repro.RefGCov, repro.Dat} {
		res, err := db.Answer(queryText, repro.Options{Strategy: s, Prefixes: prefixes})
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		fmt.Printf("%-12s -> %d answer(s) in %v", s, res.Len(), res.Meta.EvalTime)
		for i := 0; i < res.Len(); i++ {
			fmt.Printf("  %v", res.Row(i))
		}
		fmt.Println()
	}

	// The incomplete strategy of native RDF platforms misses the answer:
	// it ignores the domain/range constraints that type _:b1 as a Person
	// and connect writtenBy to hasAuthor... here it still finds the
	// author via the subproperty rule, but fails on this Person query:
	personQuery := `q(x) :- x rdf:type ex:Person`
	full, _ := db.Answer(personQuery, repro.Options{Prefixes: prefixes})
	partial, _ := db.Answer(personQuery, repro.Options{Strategy: repro.RefIncomplete, Prefixes: prefixes})
	fmt.Printf("\nWho is a Person? complete Ref: %d answer(s); incomplete Ref (Virtuoso-style): %d\n",
		full.Len(), partial.Len())

	// Inspect what reformulation did (demo step 3).
	out, err := db.Explain(queryText, repro.Options{Prefixes: prefixes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== explain ==")
	fmt.Print(out)
}
