// Updates: the §1 maintenance story, live. Sat must keep its materialized
// closure consistent as the data changes; this repository maintains it
// incrementally (counting-based), while Ref needs nothing at all — the
// trade-off is maintenance-per-update versus reformulation-per-query.
package main

import (
	"fmt"
	"log"

	"repro"
)

const base = `
@prefix ex: <http://example.org/> .
ex:Book      rdfs:subClassOf    ex:Publication .
ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
ex:writtenBy rdfs:domain        ex:Book .
ex:writtenBy rdfs:range         ex:Person .
ex:doi1 ex:writtenBy ex:borges .
`

func main() {
	db, err := repro.OpenString(base)
	if err != nil {
		log.Fatal(err)
	}
	prefixes := map[string]string{"ex": "http://example.org/"}
	persons := func(tag string) {
		for _, s := range []repro.Strategy{repro.Sat, repro.RefGCov} {
			res, err := db.Answer(`q(x) :- x rdf:type ex:Person`, repro.Options{Strategy: s, Prefixes: prefixes})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %-8s -> %d person(s)", tag, s, res.Len())
			for i := 0; i < res.Len(); i++ {
				fmt.Printf("  %v", res.Row(i))
			}
			fmt.Println()
		}
	}

	persons("initial")

	// Two more books arrive; their authors become Persons implicitly.
	fmt.Println("\n+ insert: doi2 writtenBy cortazar; doi3 writtenBy borges")
	if err := db.Insert(`
@prefix ex: <http://example.org/> .
ex:doi2 ex:writtenBy ex:cortazar .
ex:doi3 ex:writtenBy ex:borges .
`); err != nil {
		log.Fatal(err)
	}
	persons("after insert")

	// Retract doi1: borges is still a Person through doi3 (one derivation
	// remains), demonstrating the counting-based retraction.
	fmt.Println("\n- delete: doi1 writtenBy borges")
	if _, err := db.Delete(`
@prefix ex: <http://example.org/> .
ex:doi1 ex:writtenBy ex:borges .
`); err != nil {
		log.Fatal(err)
	}
	persons("after first delete")

	// Retract doi3 too: the last derivation for borges disappears.
	fmt.Println("\n- delete: doi3 writtenBy borges")
	if _, err := db.Delete(`
@prefix ex: <http://example.org/> .
ex:doi3 ex:writtenBy ex:borges .
`); err != nil {
		log.Fatal(err)
	}
	persons("after second delete")

	fmt.Println("\nSat's closure was maintained incrementally through every change;")
	fmt.Println("Ref never materialized anything to maintain in the first place.")
}
