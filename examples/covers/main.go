// Covers: the demo's interactive dimension (§5 step 2) — answer the same
// query through user-chosen covers and watch evaluation cost move across
// the JUCQ space, then let GCov pick. Uses the DBLP-like scenario.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/query"
)

func main() {
	sc, err := datasets.DBLP(datasets.Base, 7)
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(sc.Graph)
	fmt.Printf("DBLP-like scenario: %d data triples, %s\n\n", sc.Graph.DataCount(), sc.Graph.Schema())

	// Citations among publications of the same author: three atoms, so
	// the cover space is small enough to enumerate interesting points.
	q, err := query.ParseRuleWithPrefixes(sc.Graph.Dict(), sc.Prefixes,
		`q(p, q2) :- p dblp:cites q2, p dblp:creator a, q2 dblp:creator a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", query.FormatCQ(sc.Graph.Dict(), q))

	covers := []query.Cover{
		{{0}, {1}, {2}},  // SCQ: every atom alone
		{{0, 1}, {2}},    // group the join on p
		{{0, 2}, {1}},    // group the join on q2
		{{0, 1, 2}},      // single block: the UCQ
		{{0, 1}, {0, 2}}, // overlapping fragments (atom 0 in both)
	}
	for _, c := range covers {
		ans, err := eng.AnswerWithCover(q, c)
		if err != nil {
			fmt.Printf("%-24v FAILED: %v\n", c, err)
			continue
		}
		fmt.Printf("%-24v %4d answers, %3d CQs, est. cost %8.0f, eval %v\n",
			c, ans.Rows.Len(), ans.ReformulationCQs, ans.EstimatedCost,
			ans.EvalTime.Round(time.Microsecond))
	}

	ans, err := eng.Answer(q, engine.RefGCov)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGCov picked %v (est. cost %.0f) after exploring %d covers; eval %v\n",
		ans.Cover, ans.EstimatedCost, len(ans.Explored), ans.EvalTime.Round(time.Microsecond))
	_ = repro.RefGCov // the public API mirrors everything shown here
}
