// Benchmarks regenerating the paper's quantitative results (one benchmark
// per experiment row; see DESIGN.md §5 and EXPERIMENTS.md). The E1 family
// is the headline: Example 1's strategies at LUBM(1) scale. Remaining
// families use the Mini profile so `go test -bench=.` stays minutes, not
// hours; cmd/refbench runs the same experiments at full scale.
package repro

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/lubm"
	"repro/internal/ntriples"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/saturation"
	"repro/internal/stats"
	"repro/internal/storage"
)

// --- shared fixtures -------------------------------------------------------

type fixture struct {
	g    *graph.Graph
	eng  *engine.Engine
	q    query.CQ // Example 1
	univ string
}

var (
	fixOnce sync.Once
	fixDef  *fixture // LUBM(1) default profile
	fixMini *fixture
)

func fixtures(b *testing.B) (*fixture, *fixture) {
	b.Helper()
	fixOnce.Do(func() {
		build := func(p lubm.Profile) *fixture {
			g, err := lubm.NewGraph(p, 42)
			if err != nil {
				panic(err)
			}
			univ := lubm.PickExampleOneUniversity(g)
			if univ == "" {
				univ = "http://www.University0.edu"
			}
			q, err := lubm.ExampleOne(g.Dict(), univ)
			if err != nil {
				panic(err)
			}
			f := &fixture{g: g, eng: engine.New(g), q: q, univ: univ}
			// Warm the caches shared by all strategies (store, stats,
			// saturation) so per-iteration timings isolate evaluation.
			f.eng.Store()
			f.eng.Stats()
			f.eng.SatStore()
			f.eng.SatStats()
			return f
		}
		fixDef = build(lubm.Default())
		fixMini = build(lubm.Mini())
	})
	return fixDef, fixMini
}

func benchStrategy(b *testing.B, f *fixture, q query.CQ, s engine.Strategy) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		ans, err := f.eng.Answer(q, s)
		if err != nil {
			b.Fatal(err)
		}
		rows = ans.Rows.Len()
	}
	b.ReportMetric(float64(rows), "answers")
}

// --- E1: Example 1 (§4) ------------------------------------------------------

func BenchmarkE1_RefSCQ(b *testing.B) {
	f, _ := fixtures(b)
	benchStrategy(b, f, f.q, engine.RefSCQ)
}

func BenchmarkE1_RefJUCQ_PaperCover(b *testing.B) {
	f, _ := fixtures(b)
	var rows int
	for i := 0; i < b.N; i++ {
		ans, err := f.eng.AnswerWithCover(f.q, lubm.ExampleOneCover())
		if err != nil {
			b.Fatal(err)
		}
		rows = ans.Rows.Len()
	}
	b.ReportMetric(float64(rows), "answers")
}

func BenchmarkE1_RefGCov(b *testing.B) {
	f, _ := fixtures(b)
	benchStrategy(b, f, f.q, engine.RefGCov)
}

func BenchmarkE1_Sat(b *testing.B) {
	f, _ := fixtures(b)
	benchStrategy(b, f, f.q, engine.Sat)
}

// BenchmarkE1_RefUCQ evaluates the full 189K-CQ union — the strategy the
// paper could not even parse at its scale. Expect seconds per iteration.
func BenchmarkE1_RefUCQ(b *testing.B) {
	if testing.Short() {
		b.Skip("full UCQ evaluation is seconds per op")
	}
	f, _ := fixtures(b)
	benchStrategy(b, f, f.q, engine.RefUCQ)
}

// BenchmarkE1_ReformulationEnumeration measures producing the UCQ itself
// (the paper's "could not be parsed" artifact: ~189K CQs).
func BenchmarkE1_ReformulationEnumeration(b *testing.B) {
	f, _ := fixtures(b)
	r := f.eng.Reformulator()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		r.EnumerateCQ(f.q, func(query.CQ) bool {
			n++
			return true
		})
	}
	b.ReportMetric(float64(n), "CQs")
}

// --- E3: cross-system comparison (demo step 2) ------------------------------

func benchE3(b *testing.B, s engine.Strategy) {
	_, f := fixtures(b)
	qs, err := lubm.ParseQueries(f.g.Dict(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := qs[4].CQ // Q5: members of a department that are Persons
	benchStrategy(b, f, q, s)
}

func BenchmarkE3_Q5_Sat(b *testing.B)           { benchE3(b, engine.Sat) }
func BenchmarkE3_Q5_RefSCQ(b *testing.B)        { benchE3(b, engine.RefSCQ) }
func BenchmarkE3_Q5_RefGCov(b *testing.B)       { benchE3(b, engine.RefGCov) }
func BenchmarkE3_Q5_RefIncomplete(b *testing.B) { benchE3(b, engine.RefIncomplete) }
func BenchmarkE3_Q5_Datalog(b *testing.B)       { benchE3(b, engine.Dat) }

// --- E4: cover search itself (demo step 3) -----------------------------------

func BenchmarkE4_GCovSearch(b *testing.B) {
	f, _ := fixtures(b)
	r := f.eng.Reformulator()
	m := f.eng.CostModel()
	for i := 0; i < b.N; i++ {
		if _, err := core.GCov(r, m, f.q, core.GCovOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: constraint modification impact (demo step 4) -----------------------

func BenchmarkE5_ReformulateBase(b *testing.B) {
	f, _ := fixtures(b)
	r := f.eng.Reformulator()
	for i := 0; i < b.N; i++ {
		r.CombinationCount(f.q)
	}
}

func BenchmarkE5_ReformulateEnrichedSchema(b *testing.B) {
	_, f := fixtures(b)
	// Rebuild the mini graph with 5 extra subproperties per degree
	// property (the E5 "+degree hierarchy" variant).
	ts := lubm.OntologyTriples()
	for _, parent := range []string{"mastersDegreeFrom", "doctoralDegreeFrom"} {
		for i := 0; i < 5; i++ {
			sub := rdf.NewIRI(lubm.NS + parent + "Var" + string(rune('0'+i)))
			ts = append(ts, rdf.NewTriple(sub, rdf.SubPropertyOf, lubm.Prop(parent)))
		}
	}
	ts = append(ts, lubm.Generate(lubm.Mini(), 42)...)
	g, err := graph.FromTriples(ts)
	if err != nil {
		b.Fatal(err)
	}
	q, err := lubm.ExampleOne(g.Dict(), f.univ)
	if err != nil {
		b.Fatal(err)
	}
	r := core.NewReformulator(g.Schema())
	for i := 0; i < b.N; i++ {
		r.CombinationCount(q)
	}
}

// --- E6: saturation and maintenance (§1 motivation) --------------------------

func BenchmarkE6_Saturate(b *testing.B) {
	f, _ := fixtures(b)
	var derived int
	for i := 0; i < b.N; i++ {
		derived = saturation.Saturate(f.g).Derived
	}
	b.ReportMetric(float64(derived), "derived")
}

func BenchmarkE6_IncrementalMaintenance(b *testing.B) {
	f, _ := fixtures(b)
	prev := saturation.Saturate(f.g)
	batchRaw := lubm.Generate(lubm.Mini(), 123)
	enc := make([]dict.Triple, 0, len(batchRaw))
	for _, t := range batchRaw {
		enc = append(enc, f.g.Dict().EncodeTriple(t))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saturation.Increment(f.g, prev, enc)
	}
}

// --- substrate micro-benchmarks ----------------------------------------------

func BenchmarkStore_PatternScan(b *testing.B) {
	f, _ := fixtures(b)
	st := f.eng.Store()
	typeID, _ := f.g.Dict().Lookup(rdf.Type)
	pat := storage.Pattern{P: typeID}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = st.Count(pat)
	}
	b.ReportMetric(float64(n), "rows")
}

func BenchmarkExec_HashJoinChain(b *testing.B) {
	f, _ := fixtures(b)
	d := f.g.Dict()
	q, err := query.ParseRuleWithPrefixes(d, map[string]string{"ub": lubm.NS},
		`q(x, z) :- x ub:advisor y, y ub:teacherOf z`)
	if err != nil {
		b.Fatal(err)
	}
	ev := exec.New(f.eng.Store(), f.eng.Stats())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalCQ(query.HeadVarNames(q), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStats_Collect(b *testing.B) {
	_, f := fixtures(b)
	st := f.eng.Store()
	for i := 0; i < b.N; i++ {
		stats.Collect(st)
	}
}

func BenchmarkDatalog_Fixpoint(b *testing.B) {
	_, f := fixtures(b)
	for i := 0; i < b.N; i++ {
		p := datalog.EncodeGraph(f.g)
		if _, err := datalog.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParser_NTriples(b *testing.B) {
	_, f := fixtures(b)
	var sb strings.Builder
	if err := ntriples.Write(&sb, f.g.DecodedData()); err != nil {
		b.Fatal(err)
	}
	text := sb.String()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ntriples.ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicAPI_Answer(b *testing.B) {
	db, err := OpenLUBM(0, 42)
	if err != nil {
		b.Fatal(err)
	}
	// Warm caches.
	if _, err := db.Answer(`q(x) :- x rdf:type ub:Student`, Options{Prefixes: map[string]string{"ub": lubm.NS}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Answer(`q(x) :- x rdf:type ub:Student`, Options{Prefixes: map[string]string{"ub": lubm.NS}}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (design-choice benches called out in DESIGN.md) ---------------

// BenchmarkAblation_GCovCover_INLJvsHash quantifies how much of the JUCQ
// win comes from index-nested-loop probing inside fragment CQs: the same
// GCov-selected JUCQ evaluated with and without INLJ.
func BenchmarkAblation_GCovCover_Default(b *testing.B) {
	f, _ := fixtures(b)
	res, err := core.GCov(f.eng.Reformulator(), f.eng.CostModel(), f.q, core.GCovOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ev := exec.New(f.eng.Store(), f.eng.Stats())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalJUCQ(res.JUCQ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_GCovCover_ForceHashJoins(b *testing.B) {
	f, _ := fixtures(b)
	res, err := core.GCov(f.eng.Reformulator(), f.eng.CostModel(), f.q, core.GCovOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ev := exec.New(f.eng.Store(), f.eng.Stats())
	ev.ForceHashJoins = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalJUCQ(res.JUCQ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ExhaustiveCov prices the full partition-cover space —
// the optimum GCov approximates greedily (compare with
// BenchmarkE4_GCovSearch).
func BenchmarkAblation_ExhaustiveCov(b *testing.B) {
	f, _ := fixtures(b)
	r := f.eng.Reformulator()
	m := f.eng.CostModel()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExhaustiveCov(r, m, f.q, core.GCovOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ParallelUCQ measures parallel union evaluation against
// the serial default on a mid-size reformulation (LUBM Q6's UCQ).
func benchQ6UCQ(b *testing.B, parallel bool) {
	f, _ := fixtures(b)
	qs, err := lubm.ParseQueries(f.g.Dict(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	u := f.eng.Reformulator().ReformulateCQ(qs[5].CQ) // Q6: all Students
	ev := exec.New(f.eng.Store(), f.eng.Stats())
	ev.Parallel = parallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalUCQ(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_UCQSerial(b *testing.B)   { benchQ6UCQ(b, false) }
func BenchmarkAblation_UCQParallel(b *testing.B) { benchQ6UCQ(b, true) }

// BenchmarkE6_MaintainedDelete measures counting-based deletion.
func BenchmarkE6_MaintainedDelete(b *testing.B) {
	f, _ := fixtures(b)
	batch := f.g.Data()[:500]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := saturation.NewMaintained(f.g)
		b.StartTimer()
		m.Delete(batch)
	}
}

// BenchmarkSnapshot round-trips the LUBM graph through the binary format.
func BenchmarkSnapshot_WriteRead(b *testing.B) {
	f, _ := fixtures(b)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := f.g.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := graph.ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Cap()))
	}
}

func BenchmarkAblation_GCovCover_MergeJoins(b *testing.B) {
	f, _ := fixtures(b)
	res, err := core.GCov(f.eng.Reformulator(), f.eng.CostModel(), f.q, core.GCovOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ev := exec.New(f.eng.Store(), f.eng.Stats())
	ev.ForceHashJoins = true
	ev.Join = exec.JoinMerge
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalJUCQ(res.JUCQ); err != nil {
			b.Fatal(err)
		}
	}
}
