// Command refserve serves a graph as an RDF endpoint over HTTP (see
// internal/httpapi for the routes):
//
//	refserve -scenario lubm -addr :8080
//	refserve -data mygraph.nt
//	curl 'localhost:8080/query?q=q(x)+:-+x+rdf:type+ub:Student'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/lubm"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scenario = flag.String("scenario", "lubm", "built-in scenario: lubm, insee, ign, dblp")
		dataFile = flag.String("data", "", "N-Triples/Turtle file to serve instead of a scenario")
		scale    = flag.Int("scale", 1, "LUBM scale factor")
		seed     = flag.Int64("seed", 42, "generator seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-query evaluation timeout")
	)
	flag.Parse()

	var (
		g        *graph.Graph
		prefixes map[string]string
		err      error
	)
	switch {
	case strings.HasSuffix(*dataFile, ".snap"):
		g, err = graph.LoadSnapshot(*dataFile)
	case *dataFile != "":
		g, err = graph.LoadFile(*dataFile)
	case *scenario == "lubm":
		p := lubm.Default()
		p.Universities = *scale
		g, err = lubm.NewGraph(p, *seed)
		prefixes = map[string]string{"ub": lubm.NS}
	default:
		var scs []*datasets.Scenario
		scs, err = datasets.All(datasets.Base, *seed)
		if err == nil {
			for _, sc := range scs {
				if sc.Name == *scenario {
					g, prefixes = sc.Graph, sc.Prefixes
				}
			}
			if g == nil {
				err = fmt.Errorf("unknown scenario %q", *scenario)
			}
		}
	}
	if err != nil {
		log.Fatal("refserve: ", err)
	}

	log.Printf("loaded %d data triples, %s; warming caches…", g.DataCount(), g.Schema())
	srv := httpapi.New(g, prefixes)
	srv.Timeout = *timeout
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
