// Command refserve serves a graph as an RDF endpoint over HTTP (see
// internal/httpapi for the routes):
//
//	refserve -scenario lubm -addr :8080
//	refserve -data mygraph.nt
//	refserve -scenario lubm -data-dir /var/lib/refserve
//	curl 'localhost:8080/v1/query?q=q(x)+:-+x+rdf:type+ub:Student'
//	curl localhost:8080/metrics
//
// With -max-concurrency, a cost-weighted admission gate bounds in-flight
// evaluations and sheds excess load with 429 + Retry-After (see
// internal/admission).
//
// With -data-dir, the graph is durable (see internal/durable): updates
// through POST /v1/update are write-ahead logged before acknowledgment,
// checkpoints compact the log into a columnar snapshot, and restarts
// recover snapshot + WAL tail instead of re-parsing N-Triples. The
// listener binds *before* recovery: while the snapshot loads and the WAL
// replays, /healthz answers 200 and everything else answers 503 with
// code "loading", so orchestrators see an honest not-ready instead of a
// connection refusal — and never a "ready" over a half-loaded graph.
//
// On SIGINT/SIGTERM the server drains gracefully: it stops admitting
// queries (readyz fails, queued queries reject), in-flight evaluations
// finish within the grace period, and only then is the base context
// canceled to abort stragglers at their next operator checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/datasets"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/journal"
	"repro/internal/lubm"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/viewcache"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		scenario     = flag.String("scenario", "lubm", "built-in scenario: lubm, insee, ign, dblp")
		dataFile     = flag.String("data", "", "N-Triples/Turtle file to serve instead of a scenario")
		scale        = flag.Int("scale", 1, "LUBM scale factor")
		seed         = flag.Int64("seed", 42, "generator seed")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-query evaluation timeout")
		slowQuery    = flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold (0 disables)")
		grace        = flag.Duration("grace", 5*time.Second, "shutdown grace period")
		pprof        = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logJSON      = flag.Bool("log-json", true, "emit structured JSON query logs on stderr")
		viewCache    = flag.String("view-cache", "on", "fragment view cache: on or off")
		viewMB       = flag.Int("view-cache-mb", 64, "view cache byte budget in MiB")
		planCache    = flag.Int("plan-cache", 0, "GCov plan cache capacity (0 = default 128)")
		maxConc      = flag.Int("max-concurrency", 0, "admission gate weight budget (0 disables admission control)")
		queueLen     = flag.Int("queue-depth", admission.DefaultQueueDepth, "admission queue depth (0 = shed immediately when full)")
		queueWait    = flag.Duration("queue-timeout", admission.DefaultQueueTimeout, "max time a query may wait in the admission queue")
		maxCost      = flag.Float64("max-cost", 0, "estimated-cost ceiling above which queries are shed (0 = no ceiling)")
		journalLog   = flag.String("journal", "", "durable workload journal path (JSONL; empty disables)")
		journalMB    = flag.Int("journal-max-mb", 64, "journal size in MiB at which the active file rotates (gzipped)")
		sloSpec      = flag.String("slo", metrics.DefaultSLO.String(), "latency SLO as <latency>:<objective>, e.g. 250ms:99.9")
		dataDir      = flag.String("data-dir", "", "durable data directory (snapshot + WAL; empty = in-memory only)")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy: always, interval or none")
		checkpointMB = flag.Int("checkpoint-mb", 256, "WAL MiB between automatic checkpoints (0 disables)")
		shards       = flag.Int("shards", 1, "hash-partition the store by subject into N shards for scatter-gather evaluation (<2 = unsharded)")
	)
	flag.Parse()

	// Bind the listener before loading anything: probes get an honest
	// 503 "loading" during recovery instead of a connection refusal, and
	// readyz flips only once the graph is complete.
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("refserve: ", err)
	}
	boot := httpapi.NewBoot()
	// sigCtx fires on SIGINT/SIGTERM; baseCtx is every request's base
	// context and outlives the signal so a drain can finish in-flight
	// evaluations before aborting the stragglers.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := &http.Server{
		Handler:     boot,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	log.Printf("listening on %s (recovering)…", lis.Addr())

	// The registry outlives the server object: the durable manager's
	// wal.* / recovery.* instruments register here during recovery, and
	// httpapi.NewWith adopts the same registry for /metrics.
	reg := metrics.NewRegistry()

	var (
		g        *graph.Graph
		prefixes map[string]string
		mgr      *durable.Manager
	)
	loadSource := func() (*graph.Graph, map[string]string, error) {
		switch {
		case strings.HasSuffix(*dataFile, ".snap"):
			g, err := graph.LoadSnapshot(*dataFile)
			return g, nil, err
		case *dataFile != "":
			g, err := graph.LoadFile(*dataFile)
			return g, nil, err
		case *scenario == "lubm":
			p := lubm.Default()
			p.Universities = *scale
			g, err := lubm.NewGraph(p, *seed)
			return g, map[string]string{"ub": lubm.NS}, err
		default:
			scs, err := datasets.All(datasets.Base, *seed)
			if err != nil {
				return nil, nil, err
			}
			for _, sc := range scs {
				if sc.Name == *scenario {
					return sc.Graph, sc.Prefixes, nil
				}
			}
			return nil, nil, fmt.Errorf("unknown scenario %q", *scenario)
		}
	}
	if *dataDir != "" {
		mode, err := durable.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatal("refserve: ", err)
		}
		mgr, err = durable.Open(*dataDir, durable.Options{
			SyncMode:        mode,
			CheckpointBytes: int64(*checkpointMB) << 20,
			Shards:          *shards,
			Metrics:         reg,
		})
		if err != nil {
			log.Fatal("refserve: ", err)
		}
		recTr := trace.New(0)
		hadSnapshot := mgr.CurrentManifest().Snapshot != ""
		recStart := time.Now()
		g0, err := mgr.LoadGraph(recTr)
		if err != nil {
			log.Fatal("refserve: ", err)
		}
		eng := engine.New(g0)
		stats, err := mgr.Replay(eng, recTr)
		if err != nil {
			log.Fatal("refserve: ", err)
		}
		g = eng.Graph()
		if !hadSnapshot && stats.Records == 0 {
			// Fresh data directory: seed it from -data/-scenario and
			// checkpoint immediately, so every restart recovers from the
			// snapshot instead of re-parsing or re-generating the source.
			g, prefixes, err = loadSource()
			if err != nil {
				log.Fatal("refserve: ", err)
			}
			log.Printf("seeding fresh data dir %s (%d triples)…", *dataDir, g.DataCount())
			if err := mgr.Checkpoint(g); err != nil {
				log.Fatal("refserve: seed checkpoint: ", err)
			}
		} else {
			if *scenario == "lubm" && *dataFile == "" {
				prefixes = map[string]string{"ub": lubm.NS}
			}
			log.Printf("recovered %d triples in %s (snapshot %v, %d WAL records, torn tail %v)",
				g.DataCount(), time.Since(recStart).Round(time.Millisecond),
				hadSnapshot, stats.Records, stats.TornTail)
		}
	} else {
		if g, prefixes, err = loadSource(); err != nil {
			log.Fatal("refserve: ", err)
		}
	}

	log.Printf("loaded %d data triples, %s; warming caches…", g.DataCount(), g.Schema())
	srv := httpapi.NewWithOptions(g, prefixes, reg, httpapi.Options{Shards: *shards})
	if *shards >= 2 {
		log.Printf("sharding enabled: %d subject-hash shards", *shards)
	}
	srv.Timeout = *timeout
	switch strings.ToLower(*viewCache) {
	case "on":
		srv.Engine().EnableViewCache(viewcache.Config{MaxBytes: int64(*viewMB) << 20})
		log.Printf("view cache enabled (%d MiB)", *viewMB)
	case "off":
	default:
		log.Fatalf("refserve: bad -view-cache %q (want on or off)", *viewCache)
	}
	if *planCache > 0 {
		srv.Engine().SetPlanCacheCapacity(*planCache)
	}
	srv.SlowQueryThreshold = *slowQuery
	if *slowQuery == 0 {
		srv.SlowQueryThreshold = -1
	}
	if *logJSON {
		srv.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if *pprof {
		srv.EnablePprof()
		log.Printf("pprof enabled at /debug/pprof/")
	}
	slo, err := metrics.ParseSLO(*sloSpec)
	if err != nil {
		log.Fatal("refserve: ", err)
	}
	srv.SetSLO(slo)
	var jw *journal.Writer
	if *journalLog != "" {
		jw, err = journal.New(journal.Config{
			Path:     *journalLog,
			MaxBytes: int64(*journalMB) << 20,
			Metrics:  srv.Metrics(),
		})
		if err != nil {
			log.Fatal("refserve: ", err)
		}
		srv.EnableJournal(jw)
		log.Printf("workload journal at %s (rotate at %d MiB)", *journalLog, *journalMB)
	}
	if *maxConc > 0 {
		// The flag's 0 means "no queue" (shed immediately); the library
		// reserves 0 for its default depth.
		qd := *queueLen
		if qd == 0 {
			qd = -1
		}
		srv.EnableAdmission(admission.Config{
			MaxConcurrency: *maxConc,
			QueueDepth:     qd,
			QueueTimeout:   *queueWait,
			MaxCost:        *maxCost,
		})
		log.Printf("admission control enabled (budget %d, queue %d, queue timeout %s)",
			*maxConc, *queueLen, *queueWait)
	}
	if mgr != nil {
		srv.EnableDurability(mgr)
		log.Printf("durability enabled (data dir %s, wal sync %s, checkpoint every %d MiB)",
			*dataDir, *walSync, *checkpointMB)
	}

	// Flip the boot gate: readiness and every data route now serve the
	// fully recovered graph.
	boot.Ready(srv)
	log.Printf("ready: serving on %s", lis.Addr())
	select {
	case err := <-errc:
		log.Fatal("refserve: ", err)
	case <-sigCtx.Done():
	}
	log.Printf("draining (grace %s)…", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Ordered drain: stop admitting and wait for admitted evaluations,
	// then close listeners waiting out in-flight handlers, and only then
	// cancel the base context to abort whatever exceeded the grace.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("refserve: admission drain: %v", err)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("refserve: shutdown: %v", err)
	}
	cancelBase()
	// Durable state closes after handlers return: pending checkpoints
	// finish, then the WAL flushes its final batch and fsyncs.
	srv.WaitCheckpoints()
	if mgr != nil {
		if err := mgr.Close(); err != nil {
			log.Printf("refserve: wal close: %v", err)
		}
	}
	// The journal closes last: handlers have returned, so the drain
	// flushes every queued entry to disk before exit.
	if err := jw.Close(); err != nil {
		log.Printf("refserve: journal: %v", err)
	}
}
