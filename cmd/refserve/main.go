// Command refserve serves a graph as an RDF endpoint over HTTP (see
// internal/httpapi for the routes):
//
//	refserve -scenario lubm -addr :8080
//	refserve -data mygraph.nt
//	curl 'localhost:8080/query?q=q(x)+:-+x+rdf:type+ub:Student'
//	curl localhost:8080/metrics
//
// On SIGINT/SIGTERM the server drains: the base context is canceled so
// in-flight evaluations abort at their next operator checkpoint, then the
// listener shuts down within the grace period.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/lubm"
	"repro/internal/viewcache"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		scenario  = flag.String("scenario", "lubm", "built-in scenario: lubm, insee, ign, dblp")
		dataFile  = flag.String("data", "", "N-Triples/Turtle file to serve instead of a scenario")
		scale     = flag.Int("scale", 1, "LUBM scale factor")
		seed      = flag.Int64("seed", 42, "generator seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query evaluation timeout")
		slowQuery = flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold (0 disables)")
		grace     = flag.Duration("grace", 5*time.Second, "shutdown grace period")
		pprof     = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logJSON   = flag.Bool("log-json", true, "emit structured JSON query logs on stderr")
		viewCache = flag.String("view-cache", "on", "fragment view cache: on or off")
		viewMB    = flag.Int("view-cache-mb", 64, "view cache byte budget in MiB")
		planCache = flag.Int("plan-cache", 0, "GCov plan cache capacity (0 = default 128)")
	)
	flag.Parse()

	var (
		g        *graph.Graph
		prefixes map[string]string
		err      error
	)
	switch {
	case strings.HasSuffix(*dataFile, ".snap"):
		g, err = graph.LoadSnapshot(*dataFile)
	case *dataFile != "":
		g, err = graph.LoadFile(*dataFile)
	case *scenario == "lubm":
		p := lubm.Default()
		p.Universities = *scale
		g, err = lubm.NewGraph(p, *seed)
		prefixes = map[string]string{"ub": lubm.NS}
	default:
		var scs []*datasets.Scenario
		scs, err = datasets.All(datasets.Base, *seed)
		if err == nil {
			for _, sc := range scs {
				if sc.Name == *scenario {
					g, prefixes = sc.Graph, sc.Prefixes
				}
			}
			if g == nil {
				err = fmt.Errorf("unknown scenario %q", *scenario)
			}
		}
	}
	if err != nil {
		log.Fatal("refserve: ", err)
	}

	log.Printf("loaded %d data triples, %s; warming caches…", g.DataCount(), g.Schema())
	srv := httpapi.New(g, prefixes)
	srv.Timeout = *timeout
	switch strings.ToLower(*viewCache) {
	case "on":
		srv.Engine().EnableViewCache(viewcache.Config{MaxBytes: int64(*viewMB) << 20})
		log.Printf("view cache enabled (%d MiB)", *viewMB)
	case "off":
	default:
		log.Fatalf("refserve: bad -view-cache %q (want on or off)", *viewCache)
	}
	if *planCache > 0 {
		srv.Engine().SetPlanCacheCapacity(*planCache)
	}
	srv.SlowQueryThreshold = *slowQuery
	if *slowQuery == 0 {
		srv.SlowQueryThreshold = -1
	}
	if *logJSON {
		srv.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if *pprof {
		srv.EnablePprof()
		log.Printf("pprof enabled at /debug/pprof/")
	}

	// ctx is canceled on SIGINT/SIGTERM; it is also every request's base
	// context, so canceling it aborts in-flight evaluations.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{
		Addr:        *addr,
		Handler:     srv,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving on %s", *addr)
	select {
	case err := <-errc:
		log.Fatal("refserve: ", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (grace %s)…", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("refserve: shutdown: %v", err)
	}
}
