// Command reflint machine-checks the project's cross-cutting invariants:
// guard polling in executor row loops, trace-span lifecycles, context
// plumbing through Answer*/Eval* entry points, and metric-name hygiene.
// See internal/analysis for the individual analyzers and DESIGN.md
// "Static analysis & enforced invariants" for the contract each enforces.
//
// It runs in two modes:
//
//	reflint [-json] ./...             # standalone, loads packages itself
//	go vet -vettool=$(which reflint)  # unit checker driven by cmd/go
//
// Standalone output is deterministic: findings from every package are
// collected, sorted by file:line:col, and printed once — so CI diffs
// and the GitHub problem matcher see a stable stream. With -json the
// findings are emitted as a JSON array on stdout instead (uploaded as a
// CI artifact on failure).
//
// The vettool mode speaks cmd/go's unit-checker protocol: -V=full prints
// a content-addressed version line (the go command's cache key), -flags
// advertises the supported analyzer flags, and an invocation with a
// single *.cfg argument analyzes exactly one package described by that
// JSON file. Exit status: 0 clean, 1 tool error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// Protocol probes from cmd/go. These must be handled before anything
	// else: the go command invokes them to fingerprint the tool.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}
	asJSON := false
	patterns := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns, asJSON))
}

// printVersion emits the tool fingerprint line cmd/go expects from
// `tool -V=full`: the executable path, the literal word "version", and a
// buildID derived from the binary's own content, so the vet result cache
// is invalidated whenever the checker changes.
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel reflint buildID=%02x\n", progname, string(h.Sum(nil)))
}

// jsonDiagnostic is the -json wire shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, asJSON bool) int {
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reflint:", err)
		return 1
	}
	// Collect everything first: `go list` package order is not a
	// contract, and CI annotations / artifact diffs need a stable
	// stream. Sort globally by file:line:col (per-package runs are
	// already sorted, but files of different packages interleave).
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := pkg.RunAnalyzers(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reflint:", err)
			return 1
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Message < all[j].Message
	})
	if asJSON {
		out := make([]jsonDiagnostic, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "reflint:", err)
			return 1
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(os.Stderr, d.String())
		}
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes for each unit-checker
// invocation (the x/tools unitchecker.Config wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reflint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reflint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects the facts output file to exist even though
	// these analyzers export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "reflint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}
	lk := &analysis.ExportLookup{
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
	}
	pkg, err := analysis.TypeCheck(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lk)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "reflint:", err)
		return 1
	}
	diags, err := pkg.RunAnalyzers(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reflint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
