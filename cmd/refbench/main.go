// Command refbench regenerates every experiment of the paper reproduction
// (see DESIGN.md §5 and EXPERIMENTS.md):
//
//	refbench -exp all                 # run E1..E6 at LUBM(1) scale
//	refbench -exp e1 -ucq             # Example 1 including the full UCQ
//	refbench -exp e3 -scale 2 -seed 7 # cross-system comparison, LUBM(2)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/lubm"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: e1..e7, e10, e13, ablation, or all")
		scale   = flag.Int("scale", 1, "LUBM scale factor (universities)")
		seed    = flag.Int64("seed", 42, "generator seed")
		timeout = flag.Duration("timeout", 60*time.Second, "per-strategy evaluation timeout")
		ucq     = flag.Bool("ucq", false, "include the full UCQ strategy (slow)")
		jsonOut = flag.Bool("json", false, "also write each result (incl. per-phase timings) to BENCH_<EXP>.json")
		outDir  = flag.String("out", ".", "directory for BENCH_*.json files")
	)
	flag.Parse()

	profile := lubm.Default()
	profile.Universities = *scale
	cfg := bench.Config{Profile: profile, Seed: *seed, Timeout: *timeout, IncludeUCQ: *ucq}

	type experiment struct {
		name string
		run  func(bench.Config) (fmt.Stringer, error)
	}
	experiments := []experiment{
		{"e1", func(c bench.Config) (fmt.Stringer, error) { return bench.E1(c) }},
		{"e2", func(c bench.Config) (fmt.Stringer, error) { return bench.E2(c) }},
		{"e3", func(c bench.Config) (fmt.Stringer, error) { return bench.E3(c) }},
		{"e4", func(c bench.Config) (fmt.Stringer, error) { return bench.E4(c) }},
		{"e5", func(c bench.Config) (fmt.Stringer, error) { return bench.E5(c) }},
		{"e6", func(c bench.Config) (fmt.Stringer, error) { return bench.E6(c) }},
		{"e7", func(c bench.Config) (fmt.Stringer, error) { return bench.E7(c) }},
		{"e10", func(c bench.Config) (fmt.Stringer, error) { return bench.E10(c) }},
		{"e13", func(c bench.Config) (fmt.Stringer, error) { return bench.E13(c) }},
		{"ablation", func(c bench.Config) (fmt.Stringer, error) { return bench.Ablation(c) }},
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		start := time.Now()
		res, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		if *jsonOut {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "refbench: %s: %v\n", *outDir, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "BENCH_"+strings.ToUpper(e.name)+".json")
			if err := writeJSONFile(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "refbench: %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "refbench: unknown experiment %q (want e1..e7, e10, ablation or all)\n", *exp)
		os.Exit(2)
	}
}

// writeJSONFile marshals v (the experiment's structured result, with the
// bench.Run per-phase timings) into path.
func writeJSONFile(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
