package main

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
)

func TestParseCover(t *testing.T) {
	c, err := parseCover("0,2|1,3|2,4")
	if err != nil {
		t.Fatal(err)
	}
	want := query.Cover{{0, 2}, {1, 3}, {2, 4}}
	if c.Key() != want.Key() {
		t.Fatalf("parsed %v, want %v", c, want)
	}
	if _, err := parseCover("0,x|1"); err == nil {
		t.Fatal("garbage fragment must error")
	}
}

func TestParseQueryDialects(t *testing.T) {
	g, err := graph.ParseString(`
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
`)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := map[string]string{"ex": "http://example.org/"}
	if _, err := parseQuery(g, prefixes, `q(x) :- x ex:p y`); err != nil {
		t.Fatalf("rule notation: %v", err)
	}
	if _, err := parseQuery(g, prefixes, `SELECT ?x WHERE { ?x <http://example.org/p> ?y }`); err != nil {
		t.Fatalf("sparql: %v", err)
	}
	if _, err := parseQuery(g, prefixes, `PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:p ?y }`); err != nil {
		t.Fatalf("sparql with prefix: %v", err)
	}
}

func TestLoadGraphScenarios(t *testing.T) {
	for _, scenario := range []string{"insee", "ign", "dblp"} {
		g, prefixes, err := loadGraph(scenario, "", 1, 3)
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		if g.DataCount() == 0 || len(prefixes) == 0 {
			t.Fatalf("%s: empty graph or prefixes", scenario)
		}
	}
	if _, _, err := loadGraph("nope", "", 1, 3); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
