// Command refdemo mirrors the demonstration walkthrough of §5: pick an RDF
// graph, inspect its statistics (step 1), answer a query through a chosen
// strategy or all of them (step 2), and inspect the reformulation, chosen
// cover, plans and explored alternatives (step 3).
//
//	refdemo -scenario lubm -stats
//	refdemo -scenario lubm -query 'q(x) :- x rdf:type ub:Student' -strategy all
//	refdemo -scenario lubm -example1 -explain
//	refdemo -data mygraph.nt -query 'SELECT ?x WHERE { ?x a <http://...> }'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/viewcache"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "built-in scenario: lubm, insee, ign, dblp")
		dataFile = flag.String("data", "", "N-Triples/Turtle file to load instead of a scenario")
		scale    = flag.Int("scale", 1, "LUBM scale factor")
		seed     = flag.Int64("seed", 42, "generator seed")
		stats    = flag.Bool("stats", false, "print dataset statistics (demo step 1)")
		qtext    = flag.String("query", "", "query in rule or SPARQL notation")
		example1 = flag.Bool("example1", false, "use the paper's Example 1 query (LUBM)")
		strategy = flag.String("strategy", "ref-gcov", "strategy: sat, ref-ucq, ref-scq, ref-gcov, ref-range, ref-incomplete, datalog, or all")
		cover    = flag.String("cover", "", "explicit cover for ref-jucq, e.g. '0,2|1,3|2,4'")
		explain  = flag.Bool("explain", false, "show reformulation sizes, cover search and the EXPLAIN plan tree (demo step 3)")
		analyze  = flag.Bool("analyze", false, "execute with tracing and print the span tree with est-vs-actual cardinalities")
		expJSON  = flag.Bool("explain-json", false, "print plan/trace trees as JSON instead of text")
		why      = flag.Bool("why", false, "explain each answer: which reformulation branch produced it")
		maxRows  = flag.Int("maxshow", 20, "maximum answer rows to print")
		timeout  = flag.Duration("timeout", 60*time.Second, "evaluation timeout")
		vcache   = flag.String("view-cache", "off", "fragment view cache: off (default, keeps strategy timings independent) or on")
		vcacheMB = flag.Int("view-cache-mb", 64, "view cache byte budget in MiB (with -view-cache=on)")
	)
	flag.Parse()

	g, prefixes, err := loadGraph(*scenario, *dataFile, *scale, *seed)
	if err != nil {
		fail(err)
	}
	e := engine.New(g)
	e.Budget = exec.Budget{Timeout: *timeout}
	switch strings.ToLower(*vcache) {
	case "on":
		e.EnableViewCache(viewcache.Config{MaxBytes: int64(*vcacheMB) << 20})
	case "off":
	default:
		fail(fmt.Errorf("bad -view-cache %q (want on or off)", *vcache))
	}
	fmt.Printf("graph: %d data triples, %s\n", g.DataCount(), g.Schema())

	if *stats {
		fmt.Println("\n== statistics (demo step 1) ==")
		fmt.Println(e.Stats().Summary(g.Dict(), 10))
	}

	var q query.CQ
	switch {
	case *example1:
		univ := lubm.PickExampleOneUniversity(g)
		if univ == "" {
			fail(fmt.Errorf("no university yields Example 1 answers on this graph"))
		}
		q, err = lubm.ExampleOne(g.Dict(), univ)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nExample 1 query against %s\n", univ)
	case *qtext != "":
		q, err = parseQuery(g, prefixes, *qtext)
		if err != nil {
			fail(err)
		}
	default:
		if !*stats {
			fmt.Fprintln(os.Stderr, "refdemo: nothing to do; pass -stats, -query or -example1")
			os.Exit(2)
		}
		return
	}
	fmt.Printf("query: %s\n", query.FormatCQ(g.Dict(), q))

	if *explain {
		fmt.Println("\n== reformulation and cover search (demo step 3) ==")
		total, per := e.Reformulator().CombinationCount(q)
		fmt.Printf("UCQ reformulation: %d CQs (per atom: %v)\n", total, per)
	}
	if *why {
		printWhy(e, q)
		return
	}

	strategies := []engine.Strategy{engine.Strategy(*strategy)}
	if *strategy == "all" {
		strategies = []engine.Strategy{engine.Sat, engine.RefSCQ, engine.RefGCov, engine.RefRange, engine.RefIncomplete, engine.Dat}
	}
	for _, s := range strategies {
		var (
			ans *engine.Answer
		)
		if *analyze {
			// Fresh tracer per strategy so each run gets its own root span.
			e.Tracer = trace.New(0)
		}
		if *cover != "" {
			c, err := parseCover(*cover)
			if err != nil {
				fail(err)
			}
			s = engine.RefJUCQ
			if *explain {
				printPlan(e, q, s, c, *expJSON)
			}
			ans, err = e.AnswerWithCover(q, c)
			if err != nil {
				fmt.Printf("%-16s FAILED: %v\n", "ref-jucq", err)
				continue
			}
		} else {
			if *explain {
				printPlan(e, q, s, nil, *expJSON)
			}
			var err error
			ans, err = e.Answer(q, s)
			if err != nil {
				fmt.Printf("%-16s FAILED: %v\n", s, err)
				continue
			}
		}
		fmt.Printf("%-16s %6d answers  prep %-10v eval %-10v", s, ans.Rows.Len(),
			ans.PrepTime.Round(time.Microsecond), ans.EvalTime.Round(time.Microsecond))
		if ans.Cover != nil {
			fmt.Printf("  cover %v (%d CQs)", ans.Cover, ans.ReformulationCQs)
		}
		if ans.CachedFragments > 0 {
			fmt.Printf("  cached-fragments %d", ans.CachedFragments)
		}
		fmt.Println()
		if *explain && len(ans.Explored) > 0 {
			fmt.Println("explored covers:")
			for _, ex := range ans.Explored {
				tag := "tried  "
				if ex.Adopted {
					tag = "adopted"
				}
				if ex.Pruned {
					fmt.Printf("  pruned  %-40v %s\n", ex.Cover, ex.Reason)
					continue
				}
				fmt.Printf("  %s %-40v cost=%.0f card=%.0f\n", tag, ex.Cover, ex.Cost, ex.Card)
			}
		}
		if *analyze {
			fmt.Println("execution trace (EXPLAIN ANALYZE):")
			printTrace(e.Tracer.Root(), *expJSON)
		}
		printAnswers(g, ans, *maxRows)
	}
}

// printPlan shows the EXPLAIN tree for strategy s without executing.
func printPlan(e *engine.Engine, q query.CQ, s engine.Strategy, c query.Cover, asJSON bool) {
	var (
		p   *engine.Plan
		err error
	)
	if c != nil {
		p, err = e.PlanWithCover(q, c)
	} else {
		p, err = e.Plan(q, s)
	}
	if err != nil {
		fmt.Printf("plan for %s unavailable: %v\n", s, err)
		return
	}
	fmt.Println("plan (EXPLAIN):")
	if asJSON {
		out, _ := json.MarshalIndent(p.Tree(), "", "  ")
		fmt.Println(string(out))
		return
	}
	fmt.Print(indent(p.Explain(), "  "))
}

// printTrace shows an executed span tree with timings.
func printTrace(root *trace.Span, asJSON bool) {
	if root == nil {
		return
	}
	if asJSON {
		out, _ := json.MarshalIndent(trace.ToJSON(root), "", "  ")
		fmt.Println(string(out))
		return
	}
	fmt.Print(indent(trace.Render(root, trace.RenderOptions{Timing: true}), "  "))
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func loadGraph(scenario, dataFile string, scale int, seed int64) (*graph.Graph, map[string]string, error) {
	if dataFile != "" {
		g, err := graph.LoadFile(dataFile)
		return g, nil, err
	}
	switch scenario {
	case "", "lubm":
		p := lubm.Default()
		p.Universities = scale
		g, err := lubm.NewGraph(p, seed)
		return g, map[string]string{"ub": lubm.NS}, err
	case "insee", "ign", "dblp":
		scs, err := datasets.All(datasets.Base, seed)
		if err != nil {
			return nil, nil, err
		}
		for _, sc := range scs {
			if sc.Name == scenario {
				return sc.Graph, sc.Prefixes, nil
			}
		}
	}
	return nil, nil, fmt.Errorf("unknown scenario %q (want lubm, insee, ign or dblp)", scenario)
}

func parseQuery(g *graph.Graph, prefixes map[string]string, text string) (query.CQ, error) {
	upper := strings.ToUpper(strings.TrimSpace(text))
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "PREFIX") {
		return query.ParseSPARQL(g.Dict(), text)
	}
	return query.ParseRuleWithPrefixes(g.Dict(), prefixes, text)
}

func parseCover(s string) (query.Cover, error) {
	var c query.Cover
	for _, frag := range strings.Split(s, "|") {
		var idxs []int
		for _, part := range strings.Split(frag, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil {
				return nil, fmt.Errorf("bad cover fragment %q", frag)
			}
			idxs = append(idxs, n)
		}
		c = append(c, idxs)
	}
	return c, nil
}

func printAnswers(g *graph.Graph, ans *engine.Answer, maxRows int) {
	d := g.Dict()
	ans.Rows.SortRows()
	n := ans.Rows.Len()
	if n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		row := ans.Rows.Row(i)
		parts := make([]string, len(row))
		for j, id := range row {
			parts[j] = d.Decode(id).String()
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	if ans.Rows.Len() > maxRows {
		fmt.Printf("  … %d more rows\n", ans.Rows.Len()-maxRows)
	}
}

// printWhy explains each answer through its producing reformulation
// branches.
func printWhy(e *engine.Engine, q query.CQ) {
	d := e.Graph().Dict()
	u := e.Reformulator().ReformulateCQ(q)
	ev := exec.New(e.Store(), e.Stats())
	rows, prov, err := ev.EvalUCQWithProvenance(u)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%d answers from a %d-CQ reformulation\n", rows.Len(), len(u.CQs))
	for i := 0; i < rows.Len() && i < 25; i++ {
		var parts []string
		for _, id := range rows.Row(i) {
			parts = append(parts, d.Decode(id).String())
		}
		fmt.Printf("\nanswer %s\n", strings.Join(parts, "  "))
		for _, ci := range prov[i] {
			tag := "derived "
			if ci == 0 {
				tag = "explicit"
			}
			fmt.Printf("  %s via %s\n", tag, query.FormatCQ(d, u.CQs[ci]))
		}
	}
	if rows.Len() > 25 {
		fmt.Printf("\n… %d more answers\n", rows.Len()-25)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "refdemo:", err)
	os.Exit(1)
}
