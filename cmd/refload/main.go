// Command refload drives a refserve endpoint with concurrent queries and
// reports throughput and latency percentiles — the operational face of the
// paper's question (how expensive is reformulation-based answering under
// load, per strategy):
//
//	refload -url http://localhost:8080 -c 8 -n 500 \
//	        -query 'q(x) :- x rdf:type ub:Student' -strategy ref-gcov
//
// With -replay, refload re-executes a workload journal captured by
// refserve -journal instead of repeating one query: every ok-outcome
// entry is fired with its original strategy and the answer cardinality
// is checked against the captured one (a torn final line — crash
// mid-append — is tolerated and loses at most one entry):
//
//	refload -url http://localhost:8080 -c 8 -replay journal.jsonl
//
// With -insert, refload streams an N-Triples file into POST /v1/update
// in batches — against a refserve started with -data-dir this exercises
// and measures the durable (WAL group-commit) write path:
//
//	refload -url http://localhost:8080 -c 4 -insert data.nt -batch 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var (
		baseURL     = flag.String("url", "http://localhost:8080", "endpoint base URL")
		concurrency = flag.Int("c", 4, "concurrent workers")
		requests    = flag.Int("n", 200, "total requests")
		queryText   = flag.String("query", `q(x, p, y) :- x p y`, "query to send")
		strategy    = flag.String("strategy", "ref-gcov", "strategy to request")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		warmup      = flag.Int("warmup", 0, "unmeasured warmup requests before the run (populates server caches)")
		jsonOut     = flag.Bool("json", false, "emit the BENCH_*-style JSON summary instead of text")
		path        = flag.String("path", "/v1/query", "query route (use /query for the deprecated surface)")
		replay      = flag.String("replay", "", "replay a workload journal (JSONL from refserve -journal) instead of -query/-n")
		insert      = flag.String("insert", "", "stream an N-Triples file ('-' = stdin) into POST /v1/update instead of querying")
		batch       = flag.Int("batch", 1000, "triples per /v1/update request in -insert mode")
	)
	flag.Parse()

	if *insert != "" {
		res, err := runInsert(insertConfig{
			BaseURL:     *baseURL,
			FilePath:    *insert,
			Batch:       *batch,
			Concurrency: *concurrency,
			Timeout:     *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "refload:", err)
			os.Exit(1)
		}
		if *jsonOut {
			out, jerr := res.JSON()
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "refload:", jerr)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Print(res.Report())
		}
		if res.Errors > 0 {
			os.Exit(2)
		}
		return
	}

	if *replay != "" {
		res, err := runReplay(replayConfig{
			BaseURL:     *baseURL,
			JournalPath: *replay,
			Concurrency: *concurrency,
			Timeout:     *timeout,
			Path:        *path,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "refload:", err)
			os.Exit(1)
		}
		if *jsonOut {
			out, jerr := res.JSON()
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "refload:", jerr)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Print(res.Report())
		}
		if res.Mismatches > 0 {
			os.Exit(2)
		}
		return
	}

	res, err := runLoad(loadConfig{
		BaseURL:     *baseURL,
		Concurrency: *concurrency,
		Requests:    *requests,
		Warmup:      *warmup,
		Query:       *queryText,
		Strategy:    *strategy,
		Timeout:     *timeout,
		Path:        *path,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "refload:", err)
		os.Exit(1)
	}
	if *jsonOut {
		out, jerr := res.JSON()
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "refload:", jerr)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	fmt.Print(res.Report())
}
