package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	BaseURL     string
	Concurrency int
	Requests    int
	// Warmup requests are fired (with the same concurrency) before the
	// measured run and excluded from every statistic — they populate
	// server-side caches (plan cache, view cache) so the measured run
	// reflects steady state.
	Warmup   int
	Query    string
	Strategy string
	Timeout  time.Duration
	// Path is the query route (default /v1/query; use /query to measure
	// the deprecated surface).
	Path string
}

// loadResult aggregates a run.
type loadResult struct {
	Config    loadConfig
	Requests  int
	Errors    int
	Answers   int // answers of the first successful response (sanity)
	Elapsed   time.Duration
	Latencies []time.Duration // successful requests only, unsorted
	// CachedFragments sums the per-answer cachedFragments metadata over
	// successful measured requests: nonzero means the server's view cache
	// was serving fragments.
	CachedFragments int64
	// Shed counts 429/503 responses from the server's admission gate —
	// an expected outcome under deliberate overload, reported separately
	// from transport or query errors.
	Shed int
	// Mismatches counts successful answers whose total differed from the
	// first successful answer: every admitted run of the same query must
	// see identical results, loaded or not.
	Mismatches int
}

type queryPayload struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"`
}

type queryReply struct {
	Total int `json:"total"`
	Meta  struct {
		CachedFragments int `json:"cachedFragments"`
	} `json:"meta"`
}

// runLoad fires cfg.Requests POST /query requests from cfg.Concurrency
// workers (after cfg.Warmup unmeasured ones) and collects latencies.
func runLoad(cfg loadConfig) (*loadResult, error) {
	if cfg.Concurrency <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("concurrency and request count must be positive")
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("warmup must be non-negative")
	}
	body, err := json.Marshal(queryPayload{Query: cfg.Query, Strategy: cfg.Strategy})
	if err != nil {
		return nil, err
	}
	if cfg.Path == "" {
		cfg.Path = "/v1/query"
	}
	client := &http.Client{Timeout: cfg.Timeout}

	// Fail fast on an unreachable or erroring endpoint before fanning
	// out. A shed preflight is fine: the endpoint is up, just saturated —
	// which is exactly what an overload run wants to measure.
	if _, shed, err := fire(client, cfg, body); err != nil && !shed {
		return nil, fmt.Errorf("preflight request failed: %w", err)
	}

	if cfg.Warmup > 0 {
		firePhase(client, cfg, body, cfg.Warmup, nil)
	}
	res := &loadResult{Config: cfg, Requests: cfg.Requests}
	start := time.Now()
	firePhase(client, cfg, body, cfg.Requests, res)
	res.Elapsed = time.Since(start)
	return res, nil
}

// firePhase fires n requests from cfg.Concurrency workers; with a nil
// result the phase is a warmup and outcomes are discarded.
func firePhase(client *http.Client, cfg loadConfig, body []byte, n int, res *loadResult) {
	var (
		mu  sync.Mutex
		idx int
	)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if idx >= n {
					mu.Unlock()
					return
				}
				idx++
				mu.Unlock()
				t0 := time.Now()
				reply, shed, err := fire(client, cfg, body)
				lat := time.Since(t0)
				if res == nil {
					continue
				}
				mu.Lock()
				switch {
				case shed:
					res.Shed++
				case err != nil:
					res.Errors++
				default:
					if len(res.Latencies) == 0 {
						res.Answers = reply.Total
					} else if reply.Total != res.Answers {
						res.Mismatches++
					}
					res.Latencies = append(res.Latencies, lat)
					res.CachedFragments += int64(reply.Meta.CachedFragments)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// fire sends one query and returns the decoded reply. shed reports a
// 429 or 503 — the server's admission gate rejecting load, which an
// overload run counts rather than treats as failure.
func fire(client *http.Client, cfg loadConfig, body []byte) (reply *queryReply, shed bool, err error) {
	resp, err := client.Post(cfg.BaseURL+cfg.Path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, true, fmt.Errorf("shed: status %d", resp.StatusCode)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	reply = new(queryReply)
	if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
		return nil, false, err
	}
	return reply, false, nil
}

// percentile returns the p-th percentile (0 < p ≤ 100) of the latencies.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest-rank.
	rank := int(p/100*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Report renders the run summary.
func (r *loadResult) Report() string {
	var sb strings.Builder
	ok := len(r.Latencies)
	if r.Config.Warmup > 0 {
		fmt.Fprintf(&sb, "warmup: %d requests (unmeasured)\n", r.Config.Warmup)
	}
	fmt.Fprintf(&sb, "requests: %d ok, %d shed, %d errors in %v (%.1f req/s)\n",
		ok, r.Shed, r.Errors, r.Elapsed.Round(time.Millisecond),
		float64(ok)/maxF(r.Elapsed.Seconds(), 1e-9))
	if r.Mismatches > 0 {
		fmt.Fprintf(&sb, "ANSWER MISMATCHES: %d admitted responses disagreed\n", r.Mismatches)
	}
	if ok > 0 {
		fmt.Fprintf(&sb, "latency: p50=%v p95=%v p99=%v max=%v\n",
			percentile(r.Latencies, 50).Round(time.Microsecond),
			percentile(r.Latencies, 95).Round(time.Microsecond),
			percentile(r.Latencies, 99).Round(time.Microsecond),
			percentile(r.Latencies, 100).Round(time.Microsecond))
		fmt.Fprintf(&sb, "answers per query: %d\n", r.Answers)
		if r.CachedFragments > 0 {
			fmt.Fprintf(&sb, "cached fragments served: %d\n", r.CachedFragments)
		}
	}
	return sb.String()
}

// jsonReport is the -json output: the BENCH_*-style machine-readable run
// summary (throughput plus latency percentiles in milliseconds).
type jsonReport struct {
	URL                  string  `json:"url"`
	Query                string  `json:"query"`
	Strategy             string  `json:"strategy"`
	Concurrency          int     `json:"concurrency"`
	Warmup               int     `json:"warmup"`
	Requests             int     `json:"requests"`
	OK                   int     `json:"ok"`
	Shed                 int     `json:"shed"`
	Mismatches           int     `json:"mismatches"`
	Errors               int     `json:"errors"`
	ElapsedMillis        float64 `json:"elapsedMillis"`
	ThroughputPerSec     float64 `json:"throughputPerSec"`
	P50Millis            float64 `json:"p50Millis"`
	P95Millis            float64 `json:"p95Millis"`
	P99Millis            float64 `json:"p99Millis"`
	MaxMillis            float64 `json:"maxMillis"`
	AnswersPerQuery      int     `json:"answersPerQuery"`
	CachedFragmentsTotal int64   `json:"cachedFragmentsTotal"`
}

// JSON renders the run summary as indented JSON.
func (r *loadResult) JSON() (string, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	ok := len(r.Latencies)
	rep := jsonReport{
		URL:                  r.Config.BaseURL,
		Query:                r.Config.Query,
		Strategy:             r.Config.Strategy,
		Concurrency:          r.Config.Concurrency,
		Warmup:               r.Config.Warmup,
		Requests:             r.Requests,
		OK:                   ok,
		Shed:                 r.Shed,
		Mismatches:           r.Mismatches,
		Errors:               r.Errors,
		ElapsedMillis:        ms(r.Elapsed),
		ThroughputPerSec:     float64(ok) / maxF(r.Elapsed.Seconds(), 1e-9),
		P50Millis:            ms(percentile(r.Latencies, 50)),
		P95Millis:            ms(percentile(r.Latencies, 95)),
		P99Millis:            ms(percentile(r.Latencies, 99)),
		MaxMillis:            ms(percentile(r.Latencies, 100)),
		AnswersPerQuery:      r.Answers,
		CachedFragmentsTotal: r.CachedFragments,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
