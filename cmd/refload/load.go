package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	BaseURL     string
	Concurrency int
	Requests    int
	// Warmup requests are fired (with the same concurrency) before the
	// measured run and excluded from every statistic — they populate
	// server-side caches (plan cache, view cache) so the measured run
	// reflects steady state.
	Warmup   int
	Query    string
	Strategy string
	Timeout  time.Duration
}

// loadResult aggregates a run.
type loadResult struct {
	Config    loadConfig
	Requests  int
	Errors    int
	Answers   int // answers of the last successful response (sanity)
	Elapsed   time.Duration
	Latencies []time.Duration // successful requests only, unsorted
	// CachedFragments sums the per-answer cachedFragments metadata over
	// successful measured requests: nonzero means the server's view cache
	// was serving fragments.
	CachedFragments int64
}

type queryPayload struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"`
}

type queryReply struct {
	Total int `json:"total"`
	Meta  struct {
		CachedFragments int `json:"cachedFragments"`
	} `json:"meta"`
}

// runLoad fires cfg.Requests POST /query requests from cfg.Concurrency
// workers (after cfg.Warmup unmeasured ones) and collects latencies.
func runLoad(cfg loadConfig) (*loadResult, error) {
	if cfg.Concurrency <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("concurrency and request count must be positive")
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("warmup must be non-negative")
	}
	body, err := json.Marshal(queryPayload{Query: cfg.Query, Strategy: cfg.Strategy})
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.Timeout}

	// Fail fast on an unreachable or erroring endpoint before fanning out.
	if _, err := fire(client, cfg.BaseURL, body); err != nil {
		return nil, fmt.Errorf("preflight request failed: %w", err)
	}

	if cfg.Warmup > 0 {
		firePhase(client, cfg, body, cfg.Warmup, nil)
	}
	res := &loadResult{Config: cfg, Requests: cfg.Requests}
	start := time.Now()
	firePhase(client, cfg, body, cfg.Requests, res)
	res.Elapsed = time.Since(start)
	return res, nil
}

// firePhase fires n requests from cfg.Concurrency workers; with a nil
// result the phase is a warmup and outcomes are discarded.
func firePhase(client *http.Client, cfg loadConfig, body []byte, n int, res *loadResult) {
	var (
		mu  sync.Mutex
		idx int
	)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if idx >= n {
					mu.Unlock()
					return
				}
				idx++
				mu.Unlock()
				t0 := time.Now()
				reply, err := fire(client, cfg.BaseURL, body)
				lat := time.Since(t0)
				if res == nil {
					continue
				}
				mu.Lock()
				if err != nil {
					res.Errors++
				} else {
					res.Latencies = append(res.Latencies, lat)
					res.Answers = reply.Total
					res.CachedFragments += int64(reply.Meta.CachedFragments)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// fire sends one query and returns the decoded reply.
func fire(client *http.Client, baseURL string, body []byte) (*queryReply, error) {
	resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var reply queryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// percentile returns the p-th percentile (0 < p ≤ 100) of the latencies.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest-rank.
	rank := int(p/100*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Report renders the run summary.
func (r *loadResult) Report() string {
	var sb strings.Builder
	ok := len(r.Latencies)
	if r.Config.Warmup > 0 {
		fmt.Fprintf(&sb, "warmup: %d requests (unmeasured)\n", r.Config.Warmup)
	}
	fmt.Fprintf(&sb, "requests: %d ok, %d errors in %v (%.1f req/s)\n",
		ok, r.Errors, r.Elapsed.Round(time.Millisecond),
		float64(ok)/maxF(r.Elapsed.Seconds(), 1e-9))
	if ok > 0 {
		fmt.Fprintf(&sb, "latency: p50=%v p95=%v p99=%v max=%v\n",
			percentile(r.Latencies, 50).Round(time.Microsecond),
			percentile(r.Latencies, 95).Round(time.Microsecond),
			percentile(r.Latencies, 99).Round(time.Microsecond),
			percentile(r.Latencies, 100).Round(time.Microsecond))
		fmt.Fprintf(&sb, "answers per query: %d\n", r.Answers)
		if r.CachedFragments > 0 {
			fmt.Fprintf(&sb, "cached fragments served: %d\n", r.CachedFragments)
		}
	}
	return sb.String()
}

// jsonReport is the -json output: the BENCH_*-style machine-readable run
// summary (throughput plus latency percentiles in milliseconds).
type jsonReport struct {
	URL                  string  `json:"url"`
	Query                string  `json:"query"`
	Strategy             string  `json:"strategy"`
	Concurrency          int     `json:"concurrency"`
	Warmup               int     `json:"warmup"`
	Requests             int     `json:"requests"`
	OK                   int     `json:"ok"`
	Errors               int     `json:"errors"`
	ElapsedMillis        float64 `json:"elapsedMillis"`
	ThroughputPerSec     float64 `json:"throughputPerSec"`
	P50Millis            float64 `json:"p50Millis"`
	P95Millis            float64 `json:"p95Millis"`
	P99Millis            float64 `json:"p99Millis"`
	MaxMillis            float64 `json:"maxMillis"`
	AnswersPerQuery      int     `json:"answersPerQuery"`
	CachedFragmentsTotal int64   `json:"cachedFragmentsTotal"`
}

// JSON renders the run summary as indented JSON.
func (r *loadResult) JSON() (string, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	ok := len(r.Latencies)
	rep := jsonReport{
		URL:                  r.Config.BaseURL,
		Query:                r.Config.Query,
		Strategy:             r.Config.Strategy,
		Concurrency:          r.Config.Concurrency,
		Warmup:               r.Config.Warmup,
		Requests:             r.Requests,
		OK:                   ok,
		Errors:               r.Errors,
		ElapsedMillis:        ms(r.Elapsed),
		ThroughputPerSec:     float64(ok) / maxF(r.Elapsed.Seconds(), 1e-9),
		P50Millis:            ms(percentile(r.Latencies, 50)),
		P95Millis:            ms(percentile(r.Latencies, 95)),
		P99Millis:            ms(percentile(r.Latencies, 99)),
		MaxMillis:            ms(percentile(r.Latencies, 100)),
		AnswersPerQuery:      r.Answers,
		CachedFragmentsTotal: r.CachedFragments,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
