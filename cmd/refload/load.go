package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	BaseURL     string
	Concurrency int
	Requests    int
	Query       string
	Strategy    string
	Timeout     time.Duration
}

// loadResult aggregates a run.
type loadResult struct {
	Requests  int
	Errors    int
	Answers   int // answers of the last successful response (sanity)
	Elapsed   time.Duration
	Latencies []time.Duration // successful requests only, unsorted
}

type queryPayload struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"`
}

type queryReply struct {
	Total int `json:"total"`
}

// runLoad fires cfg.Requests POST /query requests from cfg.Concurrency
// workers and collects latencies.
func runLoad(cfg loadConfig) (*loadResult, error) {
	if cfg.Concurrency <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("concurrency and request count must be positive")
	}
	body, err := json.Marshal(queryPayload{Query: cfg.Query, Strategy: cfg.Strategy})
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.Timeout}

	// Fail fast on an unreachable or erroring endpoint before fanning out.
	if _, err := fire(client, cfg.BaseURL, body); err != nil {
		return nil, fmt.Errorf("preflight request failed: %w", err)
	}

	var (
		mu  sync.Mutex
		res = &loadResult{Requests: cfg.Requests}
		idx int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if idx >= cfg.Requests {
					mu.Unlock()
					return
				}
				idx++
				mu.Unlock()
				t0 := time.Now()
				total, err := fire(client, cfg.BaseURL, body)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					res.Errors++
				} else {
					res.Latencies = append(res.Latencies, lat)
					res.Answers = total
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// fire sends one query and returns the reported answer count.
func fire(client *http.Client, baseURL string, body []byte) (int, error) {
	resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var reply queryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return 0, err
	}
	return reply.Total, nil
}

// percentile returns the p-th percentile (0 < p ≤ 100) of the latencies.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest-rank.
	rank := int(p/100*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Report renders the run summary.
func (r *loadResult) Report() string {
	var sb strings.Builder
	ok := len(r.Latencies)
	fmt.Fprintf(&sb, "requests: %d ok, %d errors in %v (%.1f req/s)\n",
		ok, r.Errors, r.Elapsed.Round(time.Millisecond),
		float64(ok)/maxF(r.Elapsed.Seconds(), 1e-9))
	if ok > 0 {
		fmt.Fprintf(&sb, "latency: p50=%v p90=%v p99=%v max=%v\n",
			percentile(r.Latencies, 50).Round(time.Microsecond),
			percentile(r.Latencies, 90).Round(time.Microsecond),
			percentile(r.Latencies, 99).Round(time.Microsecond),
			percentile(r.Latencies, 100).Round(time.Microsecond))
		fmt.Fprintf(&sb, "answers per query: %d\n", r.Answers)
	}
	return sb.String()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
