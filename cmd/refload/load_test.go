package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/httpapi"
)

const loadGraph = `
@prefix ex: <http://example.org/> .
ex:Book rdfs:subClassOf ex:Publication .
ex:doi1 a ex:Book .
ex:doi2 a ex:Book .
`

func TestRunLoadAgainstEndpoint(t *testing.T) {
	g, err := graph.ParseString(loadGraph)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.New(g, map[string]string{"ex": "http://example.org/"}))
	defer srv.Close()

	res, err := runLoad(loadConfig{
		BaseURL:     srv.URL,
		Concurrency: 4,
		Requests:    40,
		Query:       `q(x) :- x rdf:type <http://example.org/Publication>`,
		Strategy:    "ref-gcov",
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if len(res.Latencies) != 40 {
		t.Fatalf("want 40 latencies, got %d", len(res.Latencies))
	}
	if res.Answers != 2 {
		t.Fatalf("answers = %d, want 2", res.Answers)
	}
	report := res.Report()
	for _, want := range []string{"req/s", "p50", "p99"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunLoadPreflightFailure(t *testing.T) {
	_, err := runLoad(loadConfig{
		BaseURL:     "http://127.0.0.1:1",
		Concurrency: 2,
		Requests:    10,
		Query:       "q(x) :- x p y",
		Timeout:     500 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "preflight") {
		t.Fatalf("want preflight error, got %v", err)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := runLoad(loadConfig{Concurrency: 0, Requests: 5}); err == nil {
		t.Fatal("zero concurrency must error")
	}
	if _, err := runLoad(loadConfig{Concurrency: 2, Requests: 0}); err == nil {
		t.Fatal("zero requests must error")
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 3}, {90, 5}, {99, 5}, {100, 5}, {20, 1},
	}
	for _, c := range cases {
		if got := percentile(lats, c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty latencies must give 0")
	}
}
