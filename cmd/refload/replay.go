package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
)

// This file implements -replay: re-executing a captured workload journal
// against a live endpoint as a benchmark. Every journaled ok-outcome
// query is fired with its original strategy, and the re-executed answer
// cardinality is checked against the captured one — a replay doubles as
// an end-to-end correctness check (same data ⇒ byte-identical counts).

// replayConfig parameterizes one replay run.
type replayConfig struct {
	BaseURL     string
	JournalPath string
	Concurrency int
	Timeout     time.Duration
	Path        string
}

// replayItem is one journaled query scheduled for re-execution.
type replayItem struct {
	body     []byte
	expected int
	sig      string
}

// replayResult aggregates a replay run.
type replayResult struct {
	Config replayConfig
	// Read / Truncated / Corrupt describe the journal decode: a torn
	// final line (crash mid-append) loses at most one entry and does not
	// fail the replay.
	Read      int
	Truncated bool
	Corrupt   int
	// Skipped counts journaled non-ok entries (canceled/budget/shed/error)
	// — there is no captured answer to verify against, so they are not
	// replayed.
	Skipped    int
	Requests   int
	Errors     int
	Shed       int
	Mismatches int
	Elapsed    time.Duration
	Latencies  []time.Duration
}

// runReplay reads the journal (segments oldest first, then the active
// file) and re-executes every ok-outcome entry.
func runReplay(cfg replayConfig) (*replayResult, error) {
	if cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("concurrency must be positive")
	}
	if cfg.Path == "" {
		cfg.Path = "/v1/query"
	}
	entries, stats, err := journal.ReadAll(cfg.JournalPath)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", cfg.JournalPath, err)
	}
	res := &replayResult{
		Config:    cfg,
		Read:      len(entries),
		Truncated: stats.Truncated,
		Corrupt:   stats.Corrupt,
	}
	var items []replayItem
	for _, e := range entries {
		if e.Outcome != journal.OutcomeOK || e.Query == "" {
			res.Skipped++
			continue
		}
		body, merr := json.Marshal(queryPayload{Query: e.Query, Strategy: e.Strategy})
		if merr != nil {
			res.Skipped++
			continue
		}
		items = append(items, replayItem{body: body, expected: e.Rows, sig: e.Sig})
	}
	if len(items) == 0 {
		return res, fmt.Errorf("no replayable entries in %s (%d read, %d skipped)",
			cfg.JournalPath, res.Read, res.Skipped)
	}
	res.Requests = len(items)
	client := &http.Client{Timeout: cfg.Timeout}
	lcfg := loadConfig{BaseURL: cfg.BaseURL, Path: cfg.Path}

	var (
		mu  sync.Mutex
		idx int
		wg  sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if idx >= len(items) {
					mu.Unlock()
					return
				}
				it := items[idx]
				idx++
				mu.Unlock()
				t0 := time.Now()
				reply, shed, err := fire(client, lcfg, it.body)
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case shed:
					res.Shed++
				case err != nil:
					res.Errors++
				default:
					if reply.Total != it.expected {
						res.Mismatches++
					}
					res.Latencies = append(res.Latencies, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// Report renders the replay summary.
func (r *replayResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "journal: %d entries read (%d skipped non-ok", r.Read, r.Skipped)
	if r.Truncated {
		sb.WriteString(", torn final line tolerated")
	}
	if r.Corrupt > 0 {
		fmt.Fprintf(&sb, ", %d corrupt lines skipped", r.Corrupt)
	}
	sb.WriteString(")\n")
	ok := len(r.Latencies)
	fmt.Fprintf(&sb, "replayed: %d ok, %d shed, %d errors in %v (%.1f req/s)\n",
		ok, r.Shed, r.Errors, r.Elapsed.Round(time.Millisecond),
		float64(ok)/maxF(r.Elapsed.Seconds(), 1e-9))
	if r.Mismatches > 0 {
		fmt.Fprintf(&sb, "ANSWER MISMATCHES: %d replayed queries returned a different cardinality\n", r.Mismatches)
	} else if ok > 0 {
		sb.WriteString("all replayed answer cardinalities match the captured run\n")
	}
	if ok > 0 {
		fmt.Fprintf(&sb, "latency: p50=%v p95=%v p99=%v max=%v\n",
			percentile(r.Latencies, 50).Round(time.Microsecond),
			percentile(r.Latencies, 95).Round(time.Microsecond),
			percentile(r.Latencies, 99).Round(time.Microsecond),
			percentile(r.Latencies, 100).Round(time.Microsecond))
	}
	return sb.String()
}

// replayJSONReport is the -json output of a replay run.
type replayJSONReport struct {
	URL              string  `json:"url"`
	Journal          string  `json:"journal"`
	Read             int     `json:"read"`
	Truncated        bool    `json:"truncated"`
	Corrupt          int     `json:"corrupt"`
	Skipped          int     `json:"skipped"`
	Requests         int     `json:"requests"`
	OK               int     `json:"ok"`
	Shed             int     `json:"shed"`
	Errors           int     `json:"errors"`
	Mismatches       int     `json:"mismatches"`
	ElapsedMillis    float64 `json:"elapsedMillis"`
	ThroughputPerSec float64 `json:"throughputPerSec"`
	P50Millis        float64 `json:"p50Millis"`
	P95Millis        float64 `json:"p95Millis"`
	P99Millis        float64 `json:"p99Millis"`
	MaxMillis        float64 `json:"maxMillis"`
}

// JSON renders the replay summary as indented JSON.
func (r *replayResult) JSON() (string, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	ok := len(r.Latencies)
	rep := replayJSONReport{
		URL:              r.Config.BaseURL,
		Journal:          r.Config.JournalPath,
		Read:             r.Read,
		Truncated:        r.Truncated,
		Corrupt:          r.Corrupt,
		Skipped:          r.Skipped,
		Requests:         r.Requests,
		OK:               ok,
		Shed:             r.Shed,
		Errors:           r.Errors,
		Mismatches:       r.Mismatches,
		ElapsedMillis:    ms(r.Elapsed),
		ThroughputPerSec: float64(ok) / maxF(r.Elapsed.Seconds(), 1e-9),
		P50Millis:        ms(percentile(r.Latencies, 50)),
		P95Millis:        ms(percentile(r.Latencies, 95)),
		P99Millis:        ms(percentile(r.Latencies, 99)),
		MaxMillis:        ms(percentile(r.Latencies, 100)),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
