package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Insert mode: stream an N-Triples file into a running refserve through
// POST /v1/update, in batches, from concurrent workers. Against a server
// started with -data-dir this measures the durable write path — every
// acknowledged batch has been WAL-logged per the server's -wal-sync
// policy, so the reported throughput is the end-to-end group-commit rate.

// insertConfig parameterizes one insert run.
type insertConfig struct {
	BaseURL string
	// FilePath is the N-Triples file to stream ("-" reads stdin).
	FilePath string
	// Batch is the number of triples per /v1/update request.
	Batch       int
	Concurrency int
	Timeout     time.Duration
}

// insertResult aggregates a run.
type insertResult struct {
	Config    insertConfig
	Batches   int
	Acked     int // triples acknowledged by the server
	Errors    int
	Durable   bool // every acked batch reported durable
	Elapsed   time.Duration
	Latencies []time.Duration
}

// insertPayload mirrors httpapi.UpdateRequest (insert only).
type insertPayload struct {
	Insert string `json:"insert"`
}

// insertReply mirrors the fields of httpapi.UpdateResponse we consume.
type insertReply struct {
	Inserted int  `json:"inserted"`
	Durable  bool `json:"durable"`
}

// runInsert streams the file through cfg.Concurrency workers. Batches are
// whole N-Triples lines, so a batch boundary never splits a triple.
func runInsert(cfg insertConfig) (*insertResult, error) {
	if cfg.Concurrency <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("concurrency and batch size must be positive")
	}
	var src io.Reader
	if cfg.FilePath == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(cfg.FilePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}

	batches := make(chan string, cfg.Concurrency)
	res := &insertResult{Config: cfg, Durable: true}
	var mu sync.Mutex
	var wg sync.WaitGroup
	client := &http.Client{Timeout: cfg.Timeout}
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range batches {
				t0 := time.Now()
				reply, err := postInsert(client, cfg.BaseURL, batch)
				lat := time.Since(t0)
				mu.Lock()
				res.Batches++
				if err != nil {
					res.Errors++
				} else {
					res.Acked += reply.Inserted
					res.Latencies = append(res.Latencies, lat)
					if !reply.Durable {
						res.Durable = false
					}
				}
				mu.Unlock()
			}
		}()
	}

	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var b strings.Builder
	n := 0
	flush := func() {
		if n > 0 {
			batches <- b.String()
			b.Reset()
			n = 0
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
		if n++; n >= cfg.Batch {
			flush()
		}
	}
	flush()
	close(batches)
	wg.Wait()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func postInsert(client *http.Client, baseURL, batch string) (*insertReply, error) {
	body, err := json.Marshal(insertPayload{Insert: batch})
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(baseURL+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var reply insertReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Report renders the human-readable summary.
func (r *insertResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "inserted %d triples in %d batches over %s (%d errors)\n",
		r.Acked, r.Batches, r.Elapsed.Round(time.Millisecond), r.Errors)
	if r.Elapsed > 0 {
		fmt.Fprintf(&sb, "  throughput  %.0f triples/s\n",
			float64(r.Acked)/r.Elapsed.Seconds())
	}
	if len(r.Latencies) > 0 {
		fmt.Fprintf(&sb, "  batch p50   %s\n", percentile(r.Latencies, 50))
		fmt.Fprintf(&sb, "  batch p95   %s\n", percentile(r.Latencies, 95))
	}
	fmt.Fprintf(&sb, "  durable     %v\n", r.Durable)
	return sb.String()
}

// JSON renders the machine-readable summary.
func (r *insertResult) JSON() (string, error) {
	out := map[string]any{
		"mode":      "insert",
		"acked":     r.Acked,
		"batches":   r.Batches,
		"errors":    r.Errors,
		"durable":   r.Durable,
		"elapsedMs": float64(r.Elapsed.Milliseconds()),
	}
	if r.Elapsed > 0 {
		out["triplesPerSec"] = float64(r.Acked) / r.Elapsed.Seconds()
	}
	if len(r.Latencies) > 0 {
		out["p50Ms"] = float64(percentile(r.Latencies, 50).Microseconds()) / 1000
		out["p95Ms"] = float64(percentile(r.Latencies, 95).Microseconds()) / 1000
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}
