// Command datagen materializes the demo scenarios to N-Triples files so
// they can be loaded by refdemo, external tools, or version-controlled:
//
//	datagen -scenario lubm -scale 1 -out lubm1.nt
//	datagen -scenario insee -size 400 -out insee.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/lubm"
	"repro/internal/ntriples"
	"repro/internal/rdf"
)

func main() {
	var (
		scenario = flag.String("scenario", "lubm", "scenario: lubm, insee, ign, dblp")
		scale    = flag.Int("scale", 1, "LUBM scale factor (universities)")
		size     = flag.Int("size", int(datasets.Base), "entity count for the synthetic scenarios")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("out", "", "output file (default stdout)")
		snapshot = flag.Bool("snapshot", false, "write a binary snapshot instead of N-Triples (requires -out)")
		turtle   = flag.Bool("turtle", false, "write compact Turtle instead of N-Triples")
	)
	flag.Parse()

	var triples []rdf.Triple
	switch *scenario {
	case "lubm":
		p := lubm.Default()
		p.Universities = *scale
		triples = append(lubm.OntologyTriples(), lubm.Generate(p, *seed)...)
	case "insee", "ign", "dblp":
		scs, err := datasets.All(datasets.Size(*size), *seed)
		if err != nil {
			fail(err)
		}
		for _, sc := range scs {
			if sc.Name != *scenario {
				continue
			}
			// Re-serialize the graph: closed schema + data.
			d := sc.Graph.Dict()
			for _, t := range sc.Graph.AllTriples() {
				triples = append(triples, d.DecodeTriple(t))
			}
		}
		if triples == nil {
			fail(fmt.Errorf("scenario %q produced no triples", *scenario))
		}
	default:
		fail(fmt.Errorf("unknown scenario %q", *scenario))
	}

	if *snapshot {
		if *out == "" {
			fail(fmt.Errorf("-snapshot requires -out"))
		}
		g, err := graph.FromTriples(triples)
		if err != nil {
			fail(err)
		}
		if err := g.SaveSnapshot(*out); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote snapshot with %d data triples\n", g.DataCount())
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if *turtle {
		prefixes := map[string]string{
			"ub":   lubm.NS,
			"ins":  "http://rdf.insee.example/def#",
			"ign":  "http://rdf.ign.example/def#",
			"dblp": "http://rdf.dblp.example/def#",
		}
		if err := ntriples.WriteTurtle(w, triples, prefixes); err != nil {
			fail(err)
		}
	} else if err := ntriples.Write(w, triples); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", len(triples))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
